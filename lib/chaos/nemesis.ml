module Cluster = Core.Cluster
module Net = Simnet.Net

type t = {
  cluster : Cluster.t;
  base_drop : float;
  mutable timers : Dessim.Engine.timer list;
  (* directed links the plan took down and has not yet revived *)
  mutable downed : (int * int) list;
  mutable skewed : int list;
  mutable restored : bool;
}

let emit_fault cl fault =
  let obs = cl.Cluster.obs in
  if Obs.enabled obs then
    Obs.emit obs
      {
        Obs.time = Dessim.Engine.now cl.Cluster.engine;
        actor = Obs.Sim;
        op = -1;
        phase = None;
        kind = Obs.Fault { label = Plan.fault_label fault };
      }

(* Tear the most recent append on every stripe log the brick holds,
   then crash it: what a power cut in mid-write leaves behind. *)
let torn_crash cl i =
  let replica = cl.Cluster.replicas.(i) in
  List.iter
    (fun stripe ->
      match Core.Replica.log replica ~stripe with
      | Some slog -> ignore (Core.Slog.tear_last slog)
      | None -> ())
    (Core.Replica.stripes replica);
  Brick.crash cl.Cluster.bricks.(i)

let on_log cl brick stripe f =
  match Core.Replica.log cl.Cluster.replicas.(brick) ~stripe with
  | Some slog -> f slog
  | None -> ()

let apply t fault =
  let cl = t.cluster in
  (match fault with
  | Plan.Crash i -> Brick.crash cl.Cluster.bricks.(i)
  | Plan.Recover i -> Brick.recover cl.Cluster.bricks.(i)
  | Plan.Partition groups -> Net.partition cl.Cluster.net groups
  | Plan.Heal -> Net.heal cl.Cluster.net
  | Plan.Drop p -> Net.set_drop cl.Cluster.net p
  | Plan.Link_down (src, dst) ->
      t.downed <- (src, dst) :: t.downed;
      Net.set_link_down cl.Cluster.net ~src ~dst true
  | Plan.Link_up (src, dst) ->
      t.downed <- List.filter (fun l -> l <> (src, dst)) t.downed;
      Net.set_link_down cl.Cluster.net ~src ~dst false
  | Plan.Skew (i, skew) ->
      if not (List.mem i t.skewed) then t.skewed <- i :: t.skewed;
      Core.Clock.set_skew (Core.Coordinator.clock cl.Cluster.coordinators.(i)) skew
  | Plan.Torn_crash i -> torn_crash cl i
  | Plan.Bit_rot (brick, stripe) ->
      on_log cl brick stripe Core.Slog.corrupt_newest
  | Plan.Sector_error (brick, stripe) ->
      on_log cl brick stripe (fun slog ->
          ignore (Core.Slog.damage_newest slog)));
  emit_fault cl fault

let install ?(base_drop = 0.) plan cluster =
  let n = Array.length cluster.Cluster.bricks in
  if Plan.max_brick plan >= n then
    invalid_arg
      (Printf.sprintf "Chaos.Nemesis.install: plan %S touches brick %d, \
                       deployment has %d"
         plan.Plan.name (Plan.max_brick plan) n);
  let engine = cluster.Cluster.engine in
  let now = Dessim.Engine.now engine in
  let t =
    {
      cluster;
      base_drop;
      timers = [];
      downed = [];
      skewed = [];
      restored = false;
    }
  in
  (* The fault closures capture [t], so [t] itself must be the record
     handed to [restore]: rebuilding it with [{ t with timers }] would
     leave restore looking at empty [downed]/[skewed] lists while the
     closures mutate the original's. *)
  t.timers <-
    List.map
      (fun { Plan.at; fault } ->
        Dessim.Engine.schedule engine ~delay:(Float.max 0. (at -. now))
          (fun () -> apply t fault))
      plan.Plan.events;
  t

let restore t =
  if not t.restored then begin
    t.restored <- true;
    List.iter Dessim.Engine.cancel t.timers;
    let cl = t.cluster in
    Net.heal cl.Cluster.net;
    Net.set_drop cl.Cluster.net t.base_drop;
    List.iter
      (fun (src, dst) -> Net.set_link_down cl.Cluster.net ~src ~dst false)
      t.downed;
    t.downed <- [];
    List.iter
      (fun i ->
        Core.Clock.set_skew
          (Core.Coordinator.clock cl.Cluster.coordinators.(i))
          0.)
      t.skewed;
    t.skewed <- [];
    Array.iter
      (fun b -> if not (Brick.is_alive b) then Brick.recover b)
      cl.Cluster.bricks
  end
