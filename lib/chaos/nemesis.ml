module Cluster = Core.Cluster
module Faultnet = Core.Faultnet
module Net = Simnet.Net

type t = {
  cluster : Cluster.t;
  base_drop : float;
  time_scale : float;
  base_config : Net.config;
      (* sim network config at install; [Slow] stacks on top of it and
         [restore] returns to it *)
  lock : Mutex.t;
  mutable timers : Runtime.timer list;
  (* directed links the plan took down and has not yet revived *)
  mutable downed : (int * int) list;
  mutable skewed : int list;
  mutable applied : (float * Plan.fault) list;
  mutable restored : bool;
}

let emit_fault cl fault =
  let obs = cl.Cluster.obs in
  if Obs.enabled obs then
    Obs.emit obs
      {
        Obs.time = Runtime.now cl.Cluster.runtime;
        actor = Obs.Sim;
        op = -1;
        phase = None;
        kind = Obs.Fault { label = Plan.fault_label fault };
      }

(* Tear the most recent append on every stripe log the brick holds,
   then crash it: what a power cut in mid-write leaves behind. *)
let torn_crash cl i =
  let replica = cl.Cluster.replicas.(i) in
  List.iter
    (fun stripe ->
      match Core.Replica.log replica ~stripe with
      | Some slog -> ignore (Core.Slog.tear_last slog)
      | None -> ())
    (Core.Replica.stripes replica);
  Cluster.crash cl i

let on_log cl brick stripe f =
  match Core.Replica.log cl.Cluster.replicas.(brick) ~stripe with
  | Some slog -> f slog
  | None -> ()

(* Which plan faults have no faithful multicore implementation, and
   why. Skew would silently do nothing (mc coordinators run logical
   clocks, whose [Clock.set_skew] is a no-op); the storage faults
   mutate a brick's stripe logs from the nemesis timer thread, which
   on mc would race the brick's live replica handlers. Every other
   variant executes on mc. *)
let fault_error cl fault =
  if not (Cluster.is_mc cl) then None
  else
    match fault with
    | Plan.Skew _ ->
        Some
          "skew: mc coordinators use logical clocks, on which \
           Clock.set_skew is a silent no-op (sim Realtime clocks only)"
    | Plan.Torn_crash _ ->
        Some
          "torn-crash: storage faults mutate stripe logs from outside \
           the brick's receive loop and would race live handlers on mc \
           (sim only)"
    | Plan.Bit_rot _ ->
        Some
          "bit-rot: storage faults mutate stripe logs from outside the \
           brick's receive loop and would race live handlers on mc \
           (sim only)"
    | Plan.Sector_error _ ->
        Some
          "sector-error: storage faults mutate stripe logs from \
           outside the brick's receive loop and would race live \
           handlers on mc (sim only)"
    | Plan.Crash _ | Plan.Recover _ | Plan.Partition _ | Plan.Heal
    | Plan.Drop _ | Plan.Link_down _ | Plan.Link_up _ | Plan.Slow _ ->
        None

(* Apply one fault to the environment. [base] is the sim network's
   pre-chaos config ([Slow] adds on top of it); [time_scale] converts
   a [Slow]'s plan units into mc wall-clock seconds. *)
let apply_env ~time_scale ~base cl fault =
  match Cluster.faultnet cl with
  | None -> (
      let net = cl.Cluster.net in
      match fault with
      | Plan.Crash i -> Cluster.crash cl i
      | Plan.Recover i -> Cluster.recover cl i
      | Plan.Partition groups -> Net.partition net groups
      | Plan.Heal -> Net.heal net
      | Plan.Drop p -> Net.set_drop net p
      | Plan.Link_down (src, dst) -> Net.set_link_down net ~src ~dst true
      | Plan.Link_up (src, dst) -> Net.set_link_down net ~src ~dst false
      | Plan.Slow (d, j) ->
          Net.set_delay net
            ~delay:(base.Net.delay +. d)
            ~jitter:(base.Net.jitter +. j)
      | Plan.Skew (i, skew) ->
          Core.Clock.set_skew
            (Core.Coordinator.clock cl.Cluster.coordinators.(i))
            skew
      | Plan.Torn_crash i -> torn_crash cl i
      | Plan.Bit_rot (brick, stripe) ->
          on_log cl brick stripe Core.Slog.corrupt_newest
      | Plan.Sector_error (brick, stripe) ->
          on_log cl brick stripe (fun slog ->
              ignore (Core.Slog.damage_newest slog)))
  | Some fnet -> (
      match fault with
      | Plan.Crash i -> Cluster.crash cl i
      | Plan.Recover i -> Cluster.recover cl i
      | Plan.Partition groups -> Faultnet.partition fnet groups
      | Plan.Heal -> Faultnet.heal fnet
      | Plan.Drop p -> Faultnet.set_drop fnet p
      | Plan.Link_down (src, dst) ->
          Faultnet.set_link_down fnet ~src ~dst true
      | Plan.Link_up (src, dst) ->
          Faultnet.set_link_down fnet ~src ~dst false
      | Plan.Slow (d, j) ->
          Faultnet.set_delay fnet ~delay:(d *. time_scale)
            ~jitter:(j *. time_scale)
      | Plan.Skew _ | Plan.Torn_crash _ | Plan.Bit_rot _
      | Plan.Sector_error _ ->
          (* install/inject reject these on mc; never silently no-op *)
          Printf.eprintf "chaos: nemesis: BUG: %s reached mc apply\n%!"
            (Plan.fault_label fault))

let apply t fault =
  Mutex.lock t.lock;
  (* A timer can race [restore]: the timer fires, [restore] wins the
     lock, cancels (too late) and heals, then the callback runs. The
     [restored] check makes the race harmless. *)
  if t.restored then Mutex.unlock t.lock
  else
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        (match fault with
        | Plan.Link_down (s, d) -> t.downed <- (s, d) :: t.downed
        | Plan.Link_up (s, d) ->
            t.downed <- List.filter (( <> ) (s, d)) t.downed
        | Plan.Skew (i, _) ->
            if not (List.mem i t.skewed) then t.skewed <- i :: t.skewed
        | _ -> ());
        apply_env ~time_scale:t.time_scale ~base:t.base_config t.cluster
          fault;
        t.applied <-
          (Runtime.now t.cluster.Cluster.runtime, fault) :: t.applied;
        emit_fault t.cluster fault)

let validate_events ~lenient ~rt ~plan_name cluster events =
  List.filter
    (fun { Plan.fault; _ } ->
      match fault_error cluster fault with
      | None -> true
      | Some msg ->
          if lenient then begin
            Printf.eprintf "chaos: nemesis: skipping [%s] on %s: %s\n%!"
              (Plan.fault_label fault) (Runtime.name rt) msg;
            false
          end
          else
            invalid_arg
              (Printf.sprintf "Chaos.Nemesis.install: plan %S: %s"
                 plan_name msg))
    events

let install ?(base_drop = 0.) ?(time_scale = 1.) ?(lenient = false) plan
    cluster =
  let n = Array.length cluster.Cluster.bricks in
  if Plan.max_brick plan >= n then
    invalid_arg
      (Printf.sprintf
         "Chaos.Nemesis.install: plan %S touches brick %d, deployment \
          has %d"
         plan.Plan.name (Plan.max_brick plan) n);
  if time_scale <= 0. then
    invalid_arg "Chaos.Nemesis.install: time_scale <= 0";
  let rt = cluster.Cluster.runtime in
  let events =
    validate_events ~lenient ~rt ~plan_name:plan.Plan.name cluster
      plan.Plan.events
  in
  let now0 = Runtime.now rt in
  (* Plan times are relative to install on mc (the pool's clock started
     at pool creation, not at install) and absolute engine time on sim,
     where installing at engine time 0 makes the two readings agree —
     and keeps sim delays byte-identical to the pre-runtime nemesis. *)
  let epoch = if Cluster.is_mc cluster then now0 else 0. in
  let t =
    {
      cluster;
      base_drop;
      time_scale;
      base_config = Net.config cluster.Cluster.net;
      lock = Mutex.create ();
      timers = [];
      downed = [];
      skewed = [];
      applied = [];
      restored = false;
    }
  in
  (* The fault closures capture [t], so [t] itself must be the record
     handed to [restore]: rebuilding it with [{ t with timers }] would
     leave restore looking at empty [downed]/[skewed] lists while the
     closures mutate the original's. *)
  let now_units = (now0 -. epoch) /. time_scale in
  t.timers <-
    List.map
      (fun { Plan.at; fault } ->
        Runtime.timer rt
          ~delay:(Float.max 0. ((at -. now_units) *. time_scale))
          (fun () -> apply t fault))
      events;
  t

let applied t =
  Mutex.lock t.lock;
  let l = List.rev t.applied in
  Mutex.unlock t.lock;
  l

let restore t =
  Mutex.lock t.lock;
  if t.restored then Mutex.unlock t.lock
  else begin
    t.restored <- true;
    let timers = t.timers in
    t.timers <- [];
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        List.iter Runtime.cancel timers;
        let cl = t.cluster in
        (match Cluster.faultnet cl with
        | None ->
            let net = cl.Cluster.net in
            Net.heal net;
            Net.set_drop net t.base_drop;
            List.iter
              (fun (src, dst) -> Net.set_link_down net ~src ~dst false)
              t.downed;
            t.downed <- [];
            Net.set_delay net ~delay:t.base_config.Net.delay
              ~jitter:t.base_config.Net.jitter;
            List.iter
              (fun i ->
                Core.Clock.set_skew
                  (Core.Coordinator.clock cl.Cluster.coordinators.(i))
                  0.)
              t.skewed;
            t.skewed <- []
        | Some fnet -> Faultnet.reset fnet ~drop:t.base_drop);
        Array.iteri
          (fun i b -> if not (Brick.is_alive b) then Cluster.recover cl i)
          cl.Cluster.bricks)
  end

let inject ?(time_scale = 1.) cluster fault =
  (match fault_error cluster fault with
  | Some msg ->
      invalid_arg (Printf.sprintf "Chaos.Nemesis.inject: %s" msg)
  | None -> ());
  apply_env ~time_scale ~base:(Net.config cluster.Cluster.net) cluster
    fault;
  emit_fault cluster fault
