(** One chaos round: a cluster, concurrent clients, a nemesis running
    a {!Plan}, and a strict-linearizability verdict — on either
    backend.

    On the default [Sim] backend the harness is a deterministic
    function of [(plan, seed, knobs)]: the cluster's engine is seeded
    with [seed], the client mix is drawn from a harness-local
    generator also derived from [seed], and the nemesis schedule is
    the plan itself — so the same inputs replay the same run, down to
    a byte-identical event trace ([capture_trace:true] twice and
    compare).

    On the [Mc] backend the {e workload} is still drawn from [seed]
    (every client's operations are pre-generated before any thread
    starts), but scheduling is real parallelism on OCaml 5 domains:
    runs are not reproducible, plan times are scaled to wall-clock
    seconds by [time_scale], crashes really tear down the brick's
    receive loop, and recovery replays the paper's section 4 path.
    Use sim to verify and shrink; use mc to hunt races. A failing mc
    seed is worth replaying on sim with the same plan.

    Per-block histories are recorded exactly as in the fuzz suite
    (invocations at call time, completions/aborts at return, pending
    operations of crashed coordinators marked partial at the crash
    instant) and checked with {!Linearize.Check.strict}.

    Silent corruption needs one special case: a {!Plan.Bit_rot} fault
    makes a replica serve garbage with a valid checksum, so a read can
    return a value nobody ever wrote. That is storage damage, not a
    protocol-ordering bug, and only {!Fab.Volume.scrub} can repair it
    — so when (and only when) the plan contains [Bit_rot] events, a
    completed read of a never-written value is reclassified as an
    abort and counted in [corrupt_reads] instead of poisoning the
    history. Protocol bugs proper (e.g. [--chaos-unsafe-skip-order])
    surface as orderings of {e genuinely written} values and are still
    caught at full strength. *)

type backend =
  | Sim  (** deterministic discrete-event backend (the oracle) *)
  | Mc of { domains : int; time_scale : float }
      (** OCaml 5 multicore backend: [domains] worker domains, plan
          times scaled by [time_scale] seconds per unit (0.001 runs a
          600-unit plan in 0.6 s) *)

type result = {
  ok : int;  (** operations that completed successfully *)
  aborted : int;
  unavailable : int;  (** fail-fast deadline expiries *)
  stuck : int;
      (** operations still pending at the end of the settle phase whose
          coordinator never crashed — a liveness bug. On mc this also
          absorbs a pool that failed to quiesce in the settle window. *)
  corrupt_reads : int;
      (** reads of never-written values under a [Bit_rot] plan *)
  violations : (int * Linearize.Check.violation) list;
      (** (block-history index, violation) for every non-linearizable
          per-block history *)
  hook_leaks : int;
      (** crash hooks above the per-brick count at deployment time —
          leaked registrations *)
  trace : string option;
      (** JSONL event trace when [capture_trace] was set *)
}

val failed : result -> bool
(** A linearizability violation, a stuck operation, or a hook leak.
    Aborts and unavailability are legitimate under faults and do not
    fail a run. *)

val pp_result : Format.formatter -> result -> unit

val run :
  ?backend:backend ->
  ?m:int ->
  ?n:int ->
  ?stripes:int ->
  ?clients:int ->
  ?ops_per_client:int ->
  ?deadline:float ->
  ?unsafe_skip_order:bool ->
  ?capture_trace:bool ->
  seed:int ->
  Plan.t ->
  result
(** Defaults: [backend = Sim], [m = 2], [n = 5] (so q = 4, f = 1),
    [stripes = 4], [clients = 3], [ops_per_client = 12],
    [deadline = 200.], [unsafe_skip_order = false],
    [capture_trace = false]. The run lasts the plan's horizon, then
    the nemesis restores the environment and the backend settles (sim:
    run to quiescence; mc: bounded wall-clock wait) so in-flight
    retries either finish or are exposed as stuck. [deadline] and the
    plan's times are in plan units on both backends; [Mc]'s
    [time_scale] converts them to seconds.
    @raise Invalid_argument on [Mc] with [clients > n] (each
    concurrent mc client needs a dedicated coordinator for timestamp
    uniqueness), [domains < 1], [time_scale <= 0], or a plan
    containing sim-only faults ({!Nemesis.install}'s rejections). *)
