module Engine = Dessim.Engine
module Fiber = Dessim.Fiber
module Net = Simnet.Net

type ('req, 'rep) envelope =
  | Request of int * Obs.ctx * 'req
  | Reply of int * Obs.ctx * 'rep
  | Oneway of Obs.ctx * 'req

type ('req, 'rep) pending = {
  members : Net.addr list;
  quorum : int;
  until : (Net.addr * 'rep) list -> bool;
  mutable replies : (Net.addr * 'rep) list;  (* newest first *)
  resumer : (Net.addr * 'rep) list Fiber.resumer;
  mutable retry_timer : Engine.timer option;
  mutable grace_timer : Engine.timer option;
  crash_hook : Brick.hook;
  coord : Brick.t;
  make_req : Net.addr -> 'req;
  ctx : Obs.ctx;
}

type ('req, 'rep) t = {
  net : (('req, 'rep) envelope) Net.t;
  req_bytes : 'req -> int;
  rep_bytes : 'rep -> int;
  req_label : 'req -> string;
  rep_label : 'rep -> string;
  retry_every : float;
  grace : float;
  retries : Metrics.Counter.t;
  obs : Obs.t;
  mutable next_rid : int;
  pending : (int, ('req, 'rep) pending) Hashtbl.t;
  handlers : (src:Net.addr -> ctx:Obs.ctx -> 'req -> 'rep option) option array;
}

let create ~net ?(metrics = Metrics.Registry.create ()) ~req_bytes ~rep_bytes
    ?(req_label = fun _ -> "req") ?(rep_label = fun _ -> "rep")
    ?(retry_every = 8.0) ?(grace = 1.0) () =
  {
    net;
    req_bytes;
    rep_bytes;
    req_label;
    rep_label;
    retry_every;
    grace;
    retries = Metrics.Registry.counter metrics "rpc.retries";
    obs = Net.obs net;
    next_rid = 0;
    pending = Hashtbl.create 32;
    handlers = Array.make (Net.n net) None;
  }

let cancel_timers p =
  (match p.retry_timer with Some tm -> Engine.cancel tm | None -> ());
  match p.grace_timer with Some tm -> Engine.cancel tm | None -> ()

let deliver_reply t rid src rep =
  match Hashtbl.find_opt t.pending rid with
  | None -> ()  (* stale reply: the call completed or the coordinator crashed *)
  | Some p ->
      if not (List.mem_assoc src p.replies) then begin
        p.replies <- (src, rep) :: p.replies;
        let count = List.length p.replies in
        let everyone = count = List.length p.members in
        let complete () =
          Hashtbl.remove t.pending rid;
          cancel_timers p;
          Brick.remove_crash_hook p.coord p.crash_hook;
          Fiber.resume p.resumer (List.rev p.replies)
        in
        if count >= p.quorum then
          if p.until p.replies || everyone then complete ()
          else if p.grace_timer = None then
            p.grace_timer <-
              Some
                (Engine.schedule (Brick.engine p.coord) ~delay:t.grace
                   (fun () -> complete ()))
      end

let install_dispatcher t addr =
  Net.register t.net addr (fun ~src env ->
      match env with
      | Request (rid, ctx, req) -> (
          match t.handlers.(addr) with
          | None -> ()
          | Some handler -> (
              match handler ~src ~ctx req with
              | None -> ()
              | Some rep ->
                  let info =
                    if Obs.enabled t.obs then Some (t.rep_label rep) else None
                  in
                  Net.send t.net ~ctx ?info ~src:addr ~dst:src
                    ~bytes_on_wire:(t.rep_bytes rep) (Reply (rid, ctx, rep))))
      | Oneway (ctx, req) -> (
          match t.handlers.(addr) with
          | None -> ()
          | Some handler -> ignore (handler ~src ~ctx req))
      | Reply (rid, _ctx, rep) -> deliver_reply t rid src rep)

let serve t ~addr handler =
  t.handlers.(addr) <- Some handler;
  install_dispatcher t addr

let ensure_dispatcher t addr =
  (* A coordinator that never serves requests still needs a network
     handler to receive replies. *)
  match t.handlers.(addr) with
  | Some _ -> ()
  | None ->
      t.handlers.(addr) <- Some (fun ~src:_ ~ctx:_ _ -> None);
      install_dispatcher t addr

let broadcast t ~src ~ctx ~targets make_req rid =
  List.iter
    (fun dst ->
      let req = make_req dst in
      let info = if Obs.enabled t.obs then Some (t.req_label req) else None in
      Net.send t.net ~ctx ?info ~src ~dst ~bytes_on_wire:(t.req_bytes req)
        (Request (rid, ctx, req)))
    targets

let call t ~coord ~members ~quorum ?(until = fun _ -> true)
    ?(ctx = Obs.no_ctx) make_req =
  if quorum > List.length members then
    invalid_arg "Quorum.Rpc.call: quorum larger than member count";
  if quorum < 1 then invalid_arg "Quorum.Rpc.call: quorum < 1";
  let rid = t.next_rid in
  t.next_rid <- t.next_rid + 1;
  let engine = Brick.engine coord in
  let src = Brick.id coord in
  ensure_dispatcher t src;
  Fiber.suspend (fun resumer ->
      (* A coordinator crash abandons the call: drop the pending entry
         (so late replies are ignored) and cancel the fiber, turning
         the operation into a partial operation. *)
      let crash_hook =
        Brick.add_crash_hook coord (fun () ->
            match Hashtbl.find_opt t.pending rid with
            | None -> ()
            | Some p ->
                Hashtbl.remove t.pending rid;
                cancel_timers p;
                Fiber.cancel p.resumer)
      in
      let p =
        {
          members;
          quorum;
          until;
          replies = [];
          resumer;
          retry_timer = None;
          grace_timer = None;
          crash_hook;
          coord;
          make_req;
          ctx;
        }
      in
      Hashtbl.replace t.pending rid p;
      let rec arm_retry () =
        p.retry_timer <-
          Some
            (Engine.schedule engine ~delay:t.retry_every (fun () ->
                 if Brick.is_alive coord && Hashtbl.mem t.pending rid then begin
                   let missing =
                     List.filter
                       (fun a -> not (List.mem_assoc a p.replies))
                       p.members
                   in
                   Metrics.Counter.incr t.retries;
                   if Obs.enabled t.obs then
                     Obs.emit t.obs
                       {
                         Obs.time = Engine.now engine;
                         actor = Obs.Coord src;
                         op = p.ctx.Obs.op;
                         phase = p.ctx.Obs.phase;
                         kind = Obs.Timeout { missing = List.length missing };
                       };
                   broadcast t ~src ~ctx:p.ctx ~targets:missing p.make_req rid;
                   arm_retry ()
                 end))
      in
      broadcast t ~src ~ctx ~targets:members make_req rid;
      arm_retry ())

let notify t ~coord ~members ?(ctx = Obs.no_ctx) req =
  let src = Brick.id coord in
  let info = if Obs.enabled t.obs then Some (t.req_label req) else None in
  List.iter
    (fun dst ->
      Net.send ~background:true ~ctx ?info t.net ~src ~dst
        ~bytes_on_wire:(t.req_bytes req) (Oneway (ctx, req)))
    members
