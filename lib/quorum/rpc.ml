module Net = Simnet.Net

type ('req, 'rep) envelope =
  | Request of int * Obs.ctx * 'req
  | Reply of int * Obs.ctx * 'rep
  | Oneway of Obs.ctx * 'req
  | Batch of ('req, 'rep) envelope list
      (* Several same-instant messages for one destination, delivered
         as one envelope with one delay sample. *)

exception Unavailable

(* The RPC layer's view of a message fabric: enough to broadcast,
   serve, and account — satisfied by the simulated lossy network and
   by the multicore backend's in-process mailboxes alike. *)
type 'msg transport = {
  xn : int;
  xobs : Obs.t;
  xsend :
    background:bool ->
    ctx:Obs.ctx ->
    info:string option ->
    src:int ->
    dst:int ->
    bytes_on_wire:int ->
    'msg ->
    unit;
  xregister : int -> (src:int -> 'msg -> unit) -> unit;
  xdead_drop : unit -> unit;
}

let of_net net =
  {
    xn = Net.n net;
    xobs = Net.obs net;
    xsend =
      (fun ~background ~ctx ~info ~src ~dst ~bytes_on_wire msg ->
        Net.send net ~background ~ctx ?info ~src ~dst ~bytes_on_wire msg);
    xregister = (fun addr handler -> Net.register net addr handler);
    xdead_drop = (fun () -> Net.count_dead_drop net);
  }

type ('req, 'rep) pending = {
  members : int list;
  nmembers : int;
  quorum : int;
  until : (int * 'rep) list -> bool;
  mutable replies : (int * 'rep) list;  (* newest first *)
  seen : Bytes.t;
      (* per-address reply flag, indexed by address; pooled
         (Runtime.Bufpool) — released exactly once, by whichever
         completion path claims the entry *)
  mutable reply_count : int;
  iv : (int * 'rep) list Runtime.Ivar.t;
  mutable retry_timer : Runtime.timer option;
  mutable grace_timer : Runtime.timer option;
  mutable deadline_timer : Runtime.timer option;
  mutable attempt : int;  (* retransmission rounds so far *)
  crash_hook : Brick.hook;
  coord : Brick.t;
  make_req : int -> 'req;
  ctx : Obs.ctx;
}

(* One staged message awaiting its key's flush event. *)
type ('req, 'rep) item = {
  it_env : ('req, 'rep) envelope;
  it_bytes : int;
  it_label : string;
  it_ctx : Obs.ctx;
}

(* One slice of the pending table. Call ids are dealt round-robin
   (rid land (nshards-1)), so concurrent coordinators touch different
   locks; claim-based completion needs only the owning shard's lock. *)
type ('req, 'rep) shard = {
  slk : Mutex.t;  (* guards tbl / pending's mutable fields *)
  tbl : (int, ('req, 'rep) pending) Hashtbl.t;
}

type ('req, 'rep) t = {
  rt : Runtime.t;
  transport : ('req, 'rep) envelope transport;
  req_bytes : 'req -> int;
  rep_bytes : 'rep -> int;
  req_label : 'req -> string;
  rep_label : 'rep -> string;
  retry_every : float;
  retry_backoff : float;
  retry_cap : float;
  grace : float;
  coalesce : bool;
  staged : (int * int * bool, ('req, 'rep) item list ref) Hashtbl.t;
      (* (src, dst, background) -> items newest-first; the first item
         staged for a key schedules that key's same-instant flush. *)
  slock : Mutex.t;  (* guards staged *)
  retries : Metrics.Counter.t;
  contention : Metrics.Counter.t;  (* shard-lock try_lock misses *)
  obs : Obs.t;
  next_rid : int Atomic.t;
  shards : ('req, 'rep) shard array;  (* length is a power of two *)
  handlers : (src:int -> ctx:Obs.ctx -> 'req -> 'rep option) option array;
}

let shard_of t rid = t.shards.(rid land (Array.length t.shards - 1))

(* Lock a shard, counting the acquisitions that had to wait: the
   ["rpc.shard.contention"] counter is the direct measure of how much
   serialization the sharding left behind. *)
let lock_shard t sh =
  if not (Mutex.try_lock sh.slk) then begin
    Metrics.Counter.incr t.contention;
    Mutex.lock sh.slk
  end

let create ~rt ~transport ?(metrics = Metrics.Registry.create ()) ~req_bytes
    ~rep_bytes ?(req_label = fun _ -> "req") ?(rep_label = fun _ -> "rep")
    ?(retry_every = 8.0) ?(retry_backoff = 2.0) ?retry_cap ?(grace = 1.0)
    ?(coalesce = false) ?(shards = 16) () =
  if retry_backoff < 1.0 then
    invalid_arg "Quorum.Rpc.create: retry_backoff < 1";
  if shards < 1 || shards land (shards - 1) <> 0 then
    invalid_arg "Quorum.Rpc.create: shards must be a power of two";
  let retry_cap =
    match retry_cap with Some c -> c | None -> retry_every *. 8.
  in
  {
    rt;
    transport;
    req_bytes;
    rep_bytes;
    req_label;
    rep_label;
    retry_every;
    retry_backoff;
    retry_cap;
    grace;
    coalesce;
    staged = Hashtbl.create 16;
    slock = Mutex.create ();
    retries = Metrics.Registry.counter metrics "rpc.retries";
    contention = Metrics.Registry.counter metrics "rpc.shard.contention";
    obs = transport.xobs;
    next_rid = Atomic.make 0;
    shards =
      Array.init shards (fun _ ->
          { slk = Mutex.create (); tbl = Hashtbl.create 8 });
    handlers = Array.make transport.xn None;
  }

(* --- per-destination coalescing ------------------------------------ *)

let flush t ((src, dst, background) as key) =
  Mutex.lock t.slock;
  let found = Hashtbl.find_opt t.staged key in
  (match found with Some _ -> Hashtbl.remove t.staged key | None -> ());
  Mutex.unlock t.slock;
  match found with
  | None -> ()
  | Some items -> (
      match List.rev !items with
      | [] -> ()
      | [ it ] ->
          (* A lone message goes out exactly as an uncoalesced send. *)
          t.transport.xsend ~background ~ctx:it.it_ctx
            ~info:(Some it.it_label) ~src ~dst ~bytes_on_wire:it.it_bytes
            it.it_env
      | its ->
          let bytes = List.fold_left (fun a it -> a + it.it_bytes) 0 its in
          (* The batch envelope pays one delay/drop sample and carries
             the summed payload; each constituent is attributed to its
             own operation with a Msg_queued event. *)
          if Obs.enabled t.obs then begin
            let now = Runtime.now t.rt in
            List.iter
              (fun it ->
                Obs.emit t.obs
                  {
                    Obs.time = now;
                    actor = Obs.Brick src;
                    op = it.it_ctx.Obs.op;
                    phase = it.it_ctx.Obs.phase;
                    kind =
                      Obs.Msg_queued
                        { dst; bytes = it.it_bytes; label = it.it_label };
                  })
              its
          end;
          let info =
            if Obs.enabled t.obs then
              Some (Printf.sprintf "batch[%d]" (List.length its))
            else None
          in
          t.transport.xsend ~background ~ctx:Obs.no_ctx ~info ~src ~dst
            ~bytes_on_wire:bytes
            (Batch (List.map (fun it -> it.it_env) its)))

(* Route every outgoing message through the per-destination staging
   buffer. The flush runs as a fresh timer event at the same instant,
   after the currently-running event has staged everything it wants to
   send, so all same-instant messages for one destination share one
   envelope. With coalescing off this is exactly a transport send. *)
let stage t ~src ~dst ~background ~ctx ~label ~bytes env =
  if not t.coalesce then
    t.transport.xsend ~background ~ctx ~info:(Some label) ~src ~dst
      ~bytes_on_wire:bytes env
  else begin
    let key = (src, dst, background) in
    let it =
      { it_env = env; it_bytes = bytes; it_label = label; it_ctx = ctx }
    in
    Mutex.lock t.slock;
    let first =
      match Hashtbl.find_opt t.staged key with
      | Some items ->
          items := it :: !items;
          false
      | None ->
          Hashtbl.replace t.staged key (ref [ it ]);
          true
    in
    Mutex.unlock t.slock;
    if first then
      ignore (Runtime.timer t.rt ~delay:0. (fun () -> flush t key))
  end

let cancel_timers p =
  (match p.retry_timer with Some tm -> Runtime.cancel tm | None -> ());
  (match p.grace_timer with Some tm -> Runtime.cancel tm | None -> ());
  match p.deadline_timer with Some tm -> Runtime.cancel tm | None -> ()

(* Deterministic retransmission jitter in [0.75, 1.25), hashed from
   (request id, attempt) rather than drawn from the engine rng: faulty
   runs must not perturb the rng stream that fault-free code samples,
   or determinism comparisons across configurations break. *)
let jitter_factor rid attempt =
  let h = (rid * 0x2545f491) lxor (attempt * 0x9e3779b1) in
  let h = (h lxor (h lsr 16)) * 0x45d9f3b land max_int in
  0.75 +. (0.5 *. float_of_int (h land 0xffff) /. 65536.)

(* Exponential backoff: retry_every * backoff^(attempt-1), capped.
   The cap bounds the pre-jitter base (see the .mli): capping after
   jitter would collapse every capped delay to retry_cap and
   re-synchronize the retries jitter exists to spread out. *)
let retry_delay t rid attempt =
  let base =
    Float.min t.retry_cap
      (t.retry_every *. (t.retry_backoff ** float_of_int (attempt - 1)))
  in
  base *. jitter_factor rid attempt

let count_dead_drop t = t.transport.xdead_drop ()

(* Claim a pending entry: remove it under the lock so exactly one
   concurrent completion path (reply quorum, grace expiry, deadline,
   coordinator crash) tears it down and wakes the caller. The
   wake-up itself — Ivar fill/abort — always runs OUTSIDE the lock:
   on the sim backend it resumes the coordinator fiber synchronously,
   which may immediately issue the next call into this module. *)
let claim t rid =
  let sh = shard_of t rid in
  lock_shard t sh;
  let po = Hashtbl.find_opt sh.tbl rid in
  (match po with Some _ -> Hashtbl.remove sh.tbl rid | None -> ());
  Mutex.unlock sh.slk;
  po

(* Return the pooled seen-buffer once the entry is out of the table.
   Claim-once semantics make this exactly-once; retry and reply paths
   only read [seen] under the shard lock while the entry is still
   present, so the buffer cannot be reused under them. *)
let release_seen p = Runtime.Bufpool.release p.seen

let complete p =
  cancel_timers p;
  Brick.remove_crash_hook p.coord p.crash_hook;
  let replies = List.rev p.replies in
  release_seen p;
  Runtime.Ivar.fill p.iv replies

let deliver_reply t rid src rep =
  let sh = shard_of t rid in
  lock_shard t sh;
  let action =
    match Hashtbl.find_opt sh.tbl rid with
    | None ->
        (* stale reply: the call completed or the coordinator crashed *)
        `Nothing
    | Some p ->
        if Bytes.get p.seen src <> '\000' then `Nothing
        else begin
          Bytes.set p.seen src '\001';
          p.replies <- (src, rep) :: p.replies;
          p.reply_count <- p.reply_count + 1;
          let everyone = p.reply_count = p.nmembers in
          if p.reply_count >= p.quorum then
            if p.until p.replies || everyone then begin
              Hashtbl.remove sh.tbl rid;
              `Complete p
            end
            else if p.grace_timer = None then `Arm_grace p
            else `Nothing
          else `Nothing
        end
  in
  Mutex.unlock sh.slk;
  match action with
  | `Nothing -> ()
  | `Complete p -> complete p
  | `Arm_grace p ->
      let tm =
        Runtime.timer t.rt ~delay:t.grace (fun () ->
            match claim t rid with None -> () | Some p -> complete p)
      in
      lock_shard t sh;
      p.grace_timer <- Some tm;
      let gone = not (Hashtbl.mem sh.tbl rid) in
      Mutex.unlock sh.slk;
      (* The call may have completed in the window before the timer was
         recorded; the claimer saw grace_timer = None, so reap it here. *)
      if gone then Runtime.cancel tm

let install_dispatcher t addr =
  let rec handle ~src env =
    match env with
    | Request (rid, ctx, req) -> (
        match t.handlers.(addr) with
        | None -> ()
        | Some handler -> (
            match handler ~src ~ctx req with
            | None -> ()
            | Some rep ->
                let label =
                  if Obs.enabled t.obs then t.rep_label rep else "msg"
                in
                stage t ~src:addr ~dst:src ~background:false ~ctx ~label
                  ~bytes:(t.rep_bytes rep) (Reply (rid, ctx, rep))))
    | Oneway (ctx, req) -> (
        match t.handlers.(addr) with
        | None -> ()
        | Some handler -> ignore (handler ~src ~ctx req))
    | Reply (rid, _ctx, rep) -> deliver_reply t rid src rep
    | Batch items -> List.iter (handle ~src) items
  in
  t.transport.xregister addr handle

let serve t ~addr handler =
  t.handlers.(addr) <- Some handler;
  install_dispatcher t addr

let ensure_dispatcher t addr =
  (* A coordinator that never serves requests still needs a network
     handler to receive replies. *)
  match t.handlers.(addr) with
  | Some _ -> ()
  | None ->
      t.handlers.(addr) <- Some (fun ~src:_ ~ctx:_ _ -> None);
      install_dispatcher t addr

let broadcast t ~src ~ctx ~targets make_req rid =
  List.iter
    (fun dst ->
      let req = make_req dst in
      let label = if Obs.enabled t.obs then t.req_label req else "msg" in
      stage t ~src ~dst ~background:false ~ctx ~label
        ~bytes:(t.req_bytes req)
        (Request (rid, ctx, req)))
    targets

let call t ~coord ~members ~quorum ?(until = fun _ -> true)
    ?(ctx = Obs.no_ctx) ?deadline make_req =
  if quorum > List.length members then
    invalid_arg "Quorum.Rpc.call: quorum larger than member count";
  if quorum < 1 then invalid_arg "Quorum.Rpc.call: quorum < 1";
  let rt = t.rt in
  (* [land max_int] keeps ids non-negative across counter wrap; ids
     deal shards round-robin, so coordinators spread over the locks. *)
  let rid = Atomic.fetch_and_add t.next_rid 1 land max_int in
  let sh = shard_of t rid in
  let src = Brick.id coord in
  ensure_dispatcher t src;
  (match deadline with
  | Some d when Runtime.now rt >= d -> raise Unavailable
  | Some _ | None -> ());
  let deadline_hit = ref false in
  let iv = Runtime.Ivar.create rt in
  (* A coordinator crash abandons the call: drop the pending entry
     (so late replies are ignored) and cancel the caller, turning
     the operation into a partial operation. *)
  let crash_hook =
    Brick.add_crash_hook coord (fun () ->
        match claim t rid with
        | None -> ()
        | Some p ->
            cancel_timers p;
            release_seen p;
            Runtime.Ivar.abort p.iv)
  in
  let seen = Runtime.Bufpool.acquire t.transport.xn in
  Bytes.fill seen 0 (Bytes.length seen) '\000';
  let p =
    {
      members;
      nmembers = List.length members;
      quorum;
      until;
      replies = [];
      seen;
      reply_count = 0;
      iv;
      retry_timer = None;
      grace_timer = None;
      deadline_timer = None;
      attempt = 0;
      crash_hook;
      coord;
      make_req;
      ctx;
    }
  in
  lock_shard t sh;
  Hashtbl.replace sh.tbl rid p;
  Mutex.unlock sh.slk;
  (* At the deadline the call stops retransmitting and fails fast:
     the pending entry and crash hook go away exactly as on
     completion, and the caller is woken to raise {!Unavailable}
     (below, outside the wait). *)
  (match deadline with
  | None -> ()
  | Some d ->
      let tm =
        Runtime.timer rt ~delay:(d -. Runtime.now rt) (fun () ->
            match claim t rid with
            | None -> ()
            | Some p ->
                cancel_timers p;
                Brick.remove_crash_hook p.coord p.crash_hook;
                release_seen p;
                deadline_hit := true;
                Runtime.Ivar.fill p.iv [])
      in
      lock_shard t sh;
      p.deadline_timer <- Some tm;
      Mutex.unlock sh.slk);
  let rec arm_retry () =
    let delay = retry_delay t rid (p.attempt + 1) in
    let tm =
      Runtime.timer rt ~delay (fun () ->
          lock_shard t sh;
          let fire =
            Brick.is_alive coord && Hashtbl.mem sh.tbl rid
          in
          let missing =
            if fire then begin
              p.attempt <- p.attempt + 1;
              List.filter (fun a -> Bytes.get p.seen a = '\000') p.members
            end
            else []
          in
          let attempt = p.attempt in
          Mutex.unlock sh.slk;
          if fire then begin
            Metrics.Counter.incr t.retries;
            if Obs.enabled t.obs then
              Obs.emit t.obs
                {
                  Obs.time = Runtime.now rt;
                  actor = Obs.Coord src;
                  op = p.ctx.Obs.op;
                  phase = p.ctx.Obs.phase;
                  kind =
                    Obs.Timeout { missing = List.length missing; attempt };
                };
            broadcast t ~src ~ctx:p.ctx ~targets:missing p.make_req rid;
            arm_retry ()
          end)
    in
    lock_shard t sh;
    p.retry_timer <- Some tm;
    let gone = not (Hashtbl.mem sh.tbl rid) in
    Mutex.unlock sh.slk;
    if gone then Runtime.cancel tm
  in
  broadcast t ~src ~ctx ~targets:members make_req rid;
  arm_retry ();
  let replies = Runtime.Ivar.await iv in
  if !deadline_hit then raise Unavailable;
  replies

let notify t ~coord ~members ?(ctx = Obs.no_ctx) req =
  let src = Brick.id coord in
  let label = if Obs.enabled t.obs then t.req_label req else "msg" in
  List.iter
    (fun dst ->
      stage t ~src ~dst ~background:true ~ctx ~label ~bytes:(t.req_bytes req)
        (Oneway (ctx, req)))
    members
