(** The non-blocking [quorum()] communication primitive (paper
    section 2.2), built on retransmission over fair-lossy channels.

    A coordinator broadcasts a request to the members of a stripe's
    replica group and blocks its task until enough replies arrive.
    Lost messages are retransmitted periodically, so under fair loss
    the call eventually completes as long as a quorum of members is
    correct. If the coordinator brick crashes first, the task is
    cancelled — the operation becomes a {e partial} operation, exactly
    the failure mode the register algorithm's recovery path handles.

    Request/reply matching uses globally unique request ids, and the
    server side is expected to be idempotent: a retransmitted request
    may be re-executed, and the register layer's handlers are written
    so that re-execution returns the same answer.

    The layer is runtime-generic (DESIGN 4g): it schedules
    retransmissions and blocks callers through a {!Runtime.t}, and
    moves messages through a {!transport} — the simulated lossy
    network ({!of_net}) or the multicore backend's mailboxes. *)

type ('req, 'rep) envelope
(** Wire message type; instantiate the fabric as carrying
    [('req, 'rep) Rpc.envelope] values. *)

type 'msg transport = {
  xn : int;  (** Address space size; addresses are [0 .. xn-1]. *)
  xobs : Obs.t;  (** Hub message events are emitted to. *)
  xsend :
    background:bool ->
    ctx:Obs.ctx ->
    info:string option ->
    src:int ->
    dst:int ->
    bytes_on_wire:int ->
    'msg ->
    unit;
      (** Fire-and-forget delivery attempt; may drop, delay,
          reorder. *)
  xregister : int -> (src:int -> 'msg -> unit) -> unit;
      (** Install the handler for an address, replacing any previous
          one. The transport must invoke handlers of one address
          sequentially (never two concurrently). *)
  xdead_drop : unit -> unit;  (** Count a message to a dead process. *)
}
(** What the RPC layer needs from a message fabric. *)

val of_net : 'msg Simnet.Net.t -> 'msg transport
(** The simulated network as a transport (sim backend). *)

type ('req, 'rep) t
(** An RPC endpoint layer shared by all processes on one fabric. *)

exception Unavailable
(** Raised by {!call} when its deadline expires before enough replies
    arrived: the quorum is presumed unreachable (more than [n - q]
    members down or partitioned away) and the caller fails fast
    instead of retransmitting forever. *)

val create :
  rt:Runtime.t ->
  transport:(('req, 'rep) envelope) transport ->
  ?metrics:Metrics.Registry.t ->
  req_bytes:('req -> int) ->
  rep_bytes:('rep -> int) ->
  ?req_label:('req -> string) ->
  ?rep_label:('rep -> string) ->
  ?retry_every:float ->
  ?retry_backoff:float ->
  ?retry_cap:float ->
  ?grace:float ->
  ?coalesce:bool ->
  ?shards:int ->
  unit ->
  ('req, 'rep) t
(** [create ~rt ~transport ~req_bytes ~rep_bytes ()] builds the layer.
    [req_bytes]/[rep_bytes] give the accounted payload size of a
    message (the block bytes it carries). [retry_every] (default 8
    time units) is the first retransmission delay; subsequent
    delays grow by a factor of [retry_backoff] (default 2, must be
    >= 1). [retry_cap] (default [8 * retry_every]) bounds the
    exponential base {e before} jitter: each delay is the capped base
    scaled by a deterministic jitter in [0.75, 1.25), so the effective
    delay may exceed [retry_cap] by up to 25% (capping after jitter
    would make every capped retransmission identical, re-synchronizing
    exactly the retries jitter exists to spread out). The jitter is
    hashed from the request id and attempt number — never drawn from
    the engine rng, so fault injection does not perturb the rng stream
    fault-free code samples.
    [grace] (default one time unit) is how long a call with an
    [~until] predicate keeps waiting after reaching a bare quorum
    before settling for it. Retransmission rounds are counted in
    [metrics] under ["rpc.retries"]. [req_label]/[rep_label] give
    short human names for messages in traces (only evaluated when the
    transport's observability hub is enabled).

    With [~coalesce:true] (default [false]), all messages one process
    sends to one destination at the same instant are batched into a
    single envelope: one network message, one delay and drop sample,
    payload bytes summed — the fan-in a real NIC and RPC stack gives
    concurrent stripe operations for free. A message alone in its
    batch is sent exactly as an uncoalesced one, so serial workloads
    are unaffected. The network's [Msg_send]/[Msg_recv] events and
    ["net.msgs"] counters count envelopes; each constituent of a
    multi-message batch is additionally attributed to its own
    operation with an [Obs.Msg_queued] event. (On the wall-clock
    multicore backend "the same instant" means "before the 0-delay
    flush timer fires" — coalescing is best-effort there and is
    normally left off.)

    The pending-call table is split into [shards] independently locked
    slices (default 16; must be a power of two), call ids dealt
    round-robin across them, so concurrent coordinators on the
    multicore backend do not serialize on one mutex; acquisitions that
    had to wait are counted in [metrics] under
    ["rpc.shard.contention"]. [~shards:1] reproduces the single-mutex
    table (the benchmark's before/after baseline). On the sim backend
    sharding is behaviorally invisible: one fiber runs at a time, so
    every lock is uncontended and completion order is unchanged. *)

val serve :
  ('req, 'rep) t -> addr:int ->
  (src:int -> ctx:Obs.ctx -> 'req -> 'rep option) -> unit
(** [serve t ~addr handler] installs the request handler for [addr].
    Returning [None] drops the request silently (the brick is crashed);
    one-way notifications also invoke [handler] and ignore the
    result. [ctx] is the caller's attribution context (operation id and
    phase), which the envelope carries across the wire; handlers pass
    it on to disk-I/O accounting so replica-side work is attributed to
    the client operation that caused it. *)

val call :
  ('req, 'rep) t ->
  coord:Brick.t ->
  members:int list ->
  quorum:int ->
  ?until:((int * 'rep) list -> bool) ->
  ?ctx:Obs.ctx ->
  ?deadline:float ->
  (int -> 'req) ->
  (int * 'rep) list
(** [call t ~coord ~members ~quorum make_req] is the paper's
    [quorum(msg)]: send [make_req dst] to every member [dst], block
    the current task, and return the replies once at least [quorum]
    members answered. The per-destination builder lets a stripe write
    ship each replica only its own block (so a write costs nB on the
    wire, as Table 1 accounts it); most calls ignore the address and
    return a shared request.

    With [~until], the call keeps waiting beyond the bare quorum —
    until the predicate holds on the replies so far, every member
    replied, or the grace period after reaching the quorum expires.
    The register layer uses this to give the designated read targets a
    chance to answer without stalling on crashed targets.

    [ctx] (default {!Obs.no_ctx}) tags every message of the round, and
    every retransmission emits a [Timeout] observability event naming
    how many members are still missing and which attempt this is.

    [deadline] is an absolute runtime-time bound: if the call has not
    completed by then, retransmission stops, the pending state and
    crash hook are torn down exactly as on completion, and
    {!Unavailable} is raised in the calling task. Without a deadline
    the call retransmits forever (the paper's model).

    Must run inside a runtime task; raises [Runtime.Cancelled]
    if [coord] crashes while the call is pending.
    @raise Invalid_argument if [quorum] exceeds the member count. *)

val count_dead_drop : ('req, 'rep) t -> unit
(** Bump the fabric's ["net.drops.dead"] counter — called by a server
    layer when it receives a message for a crashed process (the RPC
    layer itself cannot distinguish that from a one-way request that
    simply has no reply). *)

val notify :
  ('req, 'rep) t -> coord:Brick.t -> members:int list ->
  ?ctx:Obs.ctx -> 'req -> unit
(** One-way, best-effort broadcast (no retransmission, no replies);
    used for asynchronous garbage-collection messages. *)
