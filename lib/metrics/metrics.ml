module Counter = struct
  type t = { mutable value : float }

  let create () = { value = 0. }
  let incr ?(by = 1.) t = t.value <- t.value +. by
  let value t = t.value
  let reset t = t.value <- 0.
end

module Summary = struct
  (* Welford moments plus a deterministic systematic-thinning reservoir
     for percentiles: with [capacity = 0] (unbounded) every observation
     is retained and percentiles are exact; with a bound, the reservoir
     keeps every [stride]-th observation and, when full, halves the
     retained set and doubles the stride. No randomness is involved, so
     simulation runs stay a pure function of their seed. *)
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    capacity : int;  (* 0 = unbounded *)
    mutable stride : int;
    mutable pending : int;  (* observations since the last retained one *)
    mutable kept : float array;
    mutable n_kept : int;
    mutable sorted : float array option;
  }

  let create ?(capacity = 0) () =
    if capacity < 0 || capacity = 1 then
      invalid_arg "Metrics.Summary.create: capacity must be 0 or >= 2";
    {
      count = 0;
      mean = 0.;
      m2 = 0.;
      min = infinity;
      max = neg_infinity;
      capacity;
      stride = 1;
      pending = 0;
      kept = (if capacity = 0 then [||] else Array.make capacity 0.);
      n_kept = 0;
      sorted = None;
    }

  (* Halve the retained set in place (keeping every other value, oldest
     first) and double the stride. *)
  let thin t =
    let half = (t.n_kept + 1) / 2 in
    for i = 0 to half - 1 do
      t.kept.(i) <- t.kept.(2 * i)
    done;
    t.n_kept <- half;
    t.stride <- t.stride * 2

  let keep t x =
    if t.n_kept = Array.length t.kept then
      if t.capacity > 0 then thin t
      else begin
        let bigger = Array.make (Stdlib.max 8 (2 * t.n_kept)) 0. in
        Array.blit t.kept 0 bigger 0 t.n_kept;
        t.kept <- bigger
      end;
    t.kept.(t.n_kept) <- x;
    t.n_kept <- t.n_kept + 1

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.pending <- t.pending + 1;
    if t.pending >= t.stride then begin
      t.pending <- 0;
      keep t x
    end;
    t.sorted <- None

  let count t = t.count
  let mean t = t.mean

  let stddev t =
    if t.count < 2 then 0. else sqrt (t.m2 /. float_of_int (t.count - 1))

  let min t = t.min
  let max t = t.max

  let percentile t p =
    if t.count = 0 then invalid_arg "Metrics.Summary.percentile: empty";
    if p < 0. || p > 100. then
      invalid_arg "Metrics.Summary.percentile: p out of [0,100]";
    let sorted =
      match t.sorted with
      | Some a -> a
      | None ->
          let a = Array.sub t.kept 0 t.n_kept in
          Array.sort compare a;
          t.sorted <- Some a;
          a
    in
    let n = Array.length sorted in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) rank))

  let merge a b =
    let capacity =
      if a.capacity = 0 || b.capacity = 0 then 0
      else Stdlib.max a.capacity b.capacity
    in
    let t = create ~capacity () in
    t.count <- a.count + b.count;
    if t.count > 0 then begin
      let ca = float_of_int a.count and cb = float_of_int b.count in
      let delta = b.mean -. a.mean in
      t.mean <- a.mean +. (delta *. cb /. (ca +. cb));
      t.m2 <- a.m2 +. b.m2 +. (delta *. delta *. ca *. cb /. (ca +. cb))
    end;
    t.min <- Stdlib.min a.min b.min;
    t.max <- Stdlib.max a.max b.max;
    t.stride <- Stdlib.max a.stride b.stride;
    let vals = Array.append (Array.sub a.kept 0 a.n_kept) (Array.sub b.kept 0 b.n_kept) in
    if capacity = 0 || Array.length vals <= capacity then begin
      t.kept <- (if capacity = 0 then vals else t.kept);
      if capacity > 0 then Array.blit vals 0 t.kept 0 (Array.length vals);
      t.n_kept <- Array.length vals
    end
    else begin
      Array.blit vals 0 t.kept 0 capacity;
      (* Merge order: fill with the first [capacity] values, then thin
         as the rest stream in — same policy as [add]. *)
      t.n_kept <- capacity;
      for i = capacity to Array.length vals - 1 do
        keep t vals.(i)
      done
    end;
    t

  let clear t =
    t.count <- 0;
    t.mean <- 0.;
    t.m2 <- 0.;
    t.min <- infinity;
    t.max <- neg_infinity;
    t.stride <- 1;
    t.pending <- 0;
    t.n_kept <- 0;
    t.sorted <- None

  let pp fmt t =
    if t.count = 0 then Format.fprintf fmt "(empty)"
    else
      Format.fprintf fmt "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p99=%.3f max=%.3f"
        t.count t.mean (stddev t) t.min (percentile t 50.) (percentile t 99.)
        t.max
end

module Hist = struct
  (* Log-bucketed (HDR-style) histogram over non-negative floats.

     A value [v = m * 2^e] (frexp decomposition, [0.5 <= m < 1]) lands
     in octave [e], sub-bucket [floor ((2m - 1) * 2^sub_bits)]. Every
     octave has [2^sub_bits] equal-width sub-buckets, so a bucket's
     width is at most [1 / 2^sub_bits] of any value it contains: the
     quantization (relative rank-to-value) error is bounded by
     [relative_error] regardless of the value range or the number of
     observations. Counts are exact integers; [count], [sum], [min]
     and [max] are tracked exactly. Memory is proportional to the
     number of octaves spanned by the data (the bucket array grows to
     cover [log2 (max/min)] octaves and never with the observation
     count). Zero gets its own exact bucket. *)
  type t = {
    sub_bits : int;
    sub : int;  (* 2^sub_bits sub-buckets per octave *)
    mutable zero : int;  (* exact count of v = 0 *)
    mutable base : int;  (* frexp exponent of counts.(0 .. sub-1) *)
    mutable counts : int array;  (* dense over the covered octaves *)
    mutable total : int;
    mutable sum : float;
    mutable vmin : float;
    mutable vmax : float;
  }

  let create ?(sub_bits = 5) () =
    if sub_bits < 1 || sub_bits > 12 then
      invalid_arg "Metrics.Hist.create: sub_bits must be in [1, 12]";
    {
      sub_bits;
      sub = 1 lsl sub_bits;
      zero = 0;
      base = 0;
      counts = [||];
      total = 0;
      sum = 0.;
      vmin = infinity;
      vmax = neg_infinity;
    }

  let sub_bits t = t.sub_bits
  let relative_error t = 1. /. float_of_int t.sub
  let octaves t = Array.length t.counts / t.sub

  let sub_of t m =
    (* m in [0.5, 1) *)
    let s = int_of_float (((m *. 2.) -. 1.) *. float_of_int t.sub) in
    if s < 0 then 0 else if s >= t.sub then t.sub - 1 else s

  (* Grow the dense bucket array to cover octave [e]. *)
  let ensure t e =
    if Array.length t.counts = 0 then begin
      t.base <- e;
      t.counts <- Array.make t.sub 0
    end
    else if e < t.base || e >= t.base + octaves t then begin
      let lo = Stdlib.min t.base e in
      let hi = Stdlib.max (t.base + octaves t - 1) e in
      let counts = Array.make ((hi - lo + 1) * t.sub) 0 in
      Array.blit t.counts 0 counts ((t.base - lo) * t.sub)
        (Array.length t.counts);
      t.base <- lo;
      t.counts <- counts
    end

  let add ?(count = 1) t v =
    if count < 0 then invalid_arg "Metrics.Hist.add: count < 0";
    if not (Float.is_finite v) || v < 0. then
      invalid_arg "Metrics.Hist.add: value must be finite and >= 0";
    if count > 0 then begin
      t.total <- t.total + count;
      t.sum <- t.sum +. (v *. float_of_int count);
      if v < t.vmin then t.vmin <- v;
      if v > t.vmax then t.vmax <- v;
      if v = 0. then t.zero <- t.zero + count
      else begin
        let m, e = Float.frexp v in
        ensure t e;
        let idx = ((e - t.base) * t.sub) + sub_of t m in
        t.counts.(idx) <- t.counts.(idx) + count
      end
    end

  let count t = t.total
  let mean t = if t.total = 0 then 0. else t.sum /. float_of_int t.total
  let min t = t.vmin
  let max t = t.vmax

  (* Lower / upper bound of dense bucket [i]: octave [base + i / sub],
     sub-bucket [i mod sub]. *)
  let bucket_lo t i =
    let o = t.base + (i / t.sub) and s = i mod t.sub in
    Float.ldexp (1. +. (float_of_int s /. float_of_int t.sub)) (o - 1)

  let bucket_hi t i =
    let o = t.base + (i / t.sub) and s = i mod t.sub in
    Float.ldexp (1. +. (float_of_int (s + 1) /. float_of_int t.sub)) (o - 1)

  let percentile t p =
    if t.total = 0 then invalid_arg "Metrics.Hist.percentile: empty";
    if p < 0. || p > 100. then
      invalid_arg "Metrics.Hist.percentile: p out of [0,100]";
    let rank =
      Stdlib.max 1
        (int_of_float (ceil (p /. 100. *. float_of_int t.total)))
    in
    if rank <= t.zero then 0.
    else begin
      let acc = ref t.zero in
      let result = ref t.vmax in
      (try
         for i = 0 to Array.length t.counts - 1 do
           acc := !acc + t.counts.(i);
           if !acc >= rank then begin
             (* Midpoint of the bucket, clamped into the observed
                range so extreme buckets never overshoot min/max. *)
             let mid = (bucket_lo t i +. bucket_hi t i) /. 2. in
             result := Float.max t.vmin (Float.min t.vmax mid);
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end

  (* Observations strictly above [v], at bucket granularity: buckets
     entirely above [v]'s bucket are counted, [v]'s own bucket is not
     (so the result can undercount by at most one bucket's worth). *)
  let count_above t v =
    if t.total = 0 then 0
    else if v < 0. then t.total
    else begin
      let from_idx =
        if v = 0. then 0
        else begin
          let m, e = Float.frexp v in
          if Array.length t.counts = 0 || e < t.base then 0
          else if e >= t.base + octaves t then Array.length t.counts
          else ((e - t.base) * t.sub) + sub_of t m + 1
        end
      in
      let acc = ref 0 in
      for i = from_idx to Array.length t.counts - 1 do
        acc := !acc + t.counts.(i)
      done;
      !acc
    end

  let buckets t =
    let nonzero = ref [] in
    for i = Array.length t.counts - 1 downto 0 do
      if t.counts.(i) > 0 then
        nonzero := (bucket_lo t i, bucket_hi t i, t.counts.(i)) :: !nonzero
    done;
    if t.zero > 0 then (0., 0., t.zero) :: !nonzero else !nonzero

  let merge_into ~dst src =
    if dst.sub_bits <> src.sub_bits then
      invalid_arg "Metrics.Hist.merge: sub_bits differ";
    if src.total > 0 then begin
      dst.total <- dst.total + src.total;
      dst.sum <- dst.sum +. src.sum;
      dst.zero <- dst.zero + src.zero;
      if src.vmin < dst.vmin then dst.vmin <- src.vmin;
      if src.vmax > dst.vmax then dst.vmax <- src.vmax;
      if Array.length src.counts > 0 then begin
        (* Copy bucket counts index-to-index (same quantization on
           both sides), growing dst to cover src's octave range. *)
        ensure dst src.base;
        ensure dst (src.base + octaves src - 1);
        let off = (src.base - dst.base) * dst.sub in
        Array.iteri
          (fun i c ->
            if c > 0 then dst.counts.(off + i) <- dst.counts.(off + i) + c)
          src.counts
      end
    end

  let merge a b =
    if a.sub_bits <> b.sub_bits then
      invalid_arg "Metrics.Hist.merge: sub_bits differ";
    let t = create ~sub_bits:a.sub_bits () in
    merge_into ~dst:t a;
    merge_into ~dst:t b;
    t

  let clear t =
    t.zero <- 0;
    t.base <- 0;
    t.counts <- [||];
    t.total <- 0;
    t.sum <- 0.;
    t.vmin <- infinity;
    t.vmax <- neg_infinity

  let pp fmt t =
    if t.total = 0 then Format.fprintf fmt "(empty)"
    else
      Format.fprintf fmt
        "n=%d mean=%.3f min=%.3f p50=%.3f p99=%.3f p99.9=%.3f max=%.3f \
         (±%.1f%%)"
        t.total (mean t) t.vmin (percentile t 50.) (percentile t 99.)
        (percentile t 99.9) t.vmax
        (relative_error t *. 100.)
end

module Timeseries = struct
  (* Named counters and histograms bucketed per fixed window of
     (simulated) time. Windows materialize on first touch, so memory
     is proportional to the number of distinct (name, active window)
     pairs, not to elapsed time or observation count. *)
  type t = {
    width : float;
    hist_bits : int;
    counters : (string, (int, float ref) Hashtbl.t) Hashtbl.t;
    hists : (string, (int, Hist.t) Hashtbl.t) Hashtbl.t;
    mutable wlo : int;
    mutable whi : int;  (* wlo > whi means no data yet *)
  }

  let create ?(hist_bits = 5) ~width () =
    if width <= 0. then invalid_arg "Metrics.Timeseries.create: width <= 0";
    {
      width;
      hist_bits;
      counters = Hashtbl.create 16;
      hists = Hashtbl.create 16;
      wlo = max_int;
      whi = min_int;
    }

  let width t = t.width
  let window_of t time = int_of_float (Float.floor (time /. t.width))
  let window_start t w = float_of_int w *. t.width

  let touch t w =
    if w < t.wlo then t.wlo <- w;
    if w > t.whi then t.whi <- w

  let span t = if t.wlo > t.whi then None else Some (t.wlo, t.whi)

  let table tbl name =
    match Hashtbl.find_opt tbl name with
    | Some m -> m
    | None ->
        let m = Hashtbl.create 32 in
        Hashtbl.add tbl name m;
        m

  let incr t ~time ?(by = 1.) name =
    let w = window_of t time in
    touch t w;
    let m = table t.counters name in
    match Hashtbl.find_opt m w with
    | Some r -> r := !r +. by
    | None -> Hashtbl.add m w (ref by)

  let observe t ~time name v =
    let w = window_of t time in
    touch t w;
    let m = table t.hists name in
    let h =
      match Hashtbl.find_opt m w with
      | Some h -> h
      | None ->
          let h = Hist.create ~sub_bits:t.hist_bits () in
          Hashtbl.add m w h;
          h
    in
    Hist.add h v

  let names tbl =
    Hashtbl.fold (fun name _ acc -> name :: acc) tbl []
    |> List.sort String.compare

  let counter_names t = names t.counters
  let hist_names t = names t.hists

  let counter t name w =
    match Hashtbl.find_opt t.counters name with
    | None -> 0.
    | Some m -> ( match Hashtbl.find_opt m w with Some r -> !r | None -> 0.)

  let hist t name w =
    Option.bind (Hashtbl.find_opt t.hists name) (fun m -> Hashtbl.find_opt m w)

  let fold_windows t f init =
    match span t with
    | None -> init
    | Some (lo, hi) ->
        let acc = ref init in
        for w = lo to hi do
          acc := f !acc w
        done;
        !acc

  let counter_series t name =
    List.rev (fold_windows t (fun acc w -> (w, counter t name w) :: acc) [])

  let hist_series t name =
    List.rev (fold_windows t (fun acc w -> (w, hist t name w) :: acc) [])

  let percentile_series t name p =
    List.map
      (fun (w, h) ->
        match h with
        | Some h when Hist.count h > 0 -> (w, Some (Hist.percentile h p))
        | _ -> (w, None))
      (hist_series t name)

  let total t name =
    List.fold_left (fun acc (_, v) -> acc +. v) 0. (counter_series t name)

  let merged_hist t name =
    match Hashtbl.find_opt t.hists name with
    | None -> None
    | Some m ->
        if Hashtbl.length m = 0 then None
        else begin
          let acc = Hist.create ~sub_bits:t.hist_bits () in
          (* Merge in window order: associative, so the order only
             matters for float-sum determinism. *)
          List.iter
            (fun (_, h) -> Option.iter (fun h -> Hist.merge_into ~dst:acc h) h)
            (hist_series t name);
          Some acc
        end
end

module Registry = struct
  type t = {
    counters : (string, Counter.t) Hashtbl.t;
    summaries : (string, Summary.t) Hashtbl.t;
    hists : (string, Hist.t) Hashtbl.t;
  }

  let create () : t =
    {
      counters = Hashtbl.create 32;
      summaries = Hashtbl.create 8;
      hists = Hashtbl.create 8;
    }

  let counter t name =
    match Hashtbl.find_opt t.counters name with
    | Some c -> c
    | None ->
        let c = Counter.create () in
        Hashtbl.add t.counters name c;
        c

  let incr ?by t name = Counter.incr ?by (counter t name)

  let value t name =
    match Hashtbl.find_opt t.counters name with
    | Some c -> Counter.value c
    | None -> 0.

  let names t =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.counters []
    |> List.sort String.compare

  let summary ?capacity t name =
    match Hashtbl.find_opt t.summaries name with
    | Some s -> s
    | None ->
        let s = Summary.create ?capacity () in
        Hashtbl.add t.summaries name s;
        s

  let summary_opt t name = Hashtbl.find_opt t.summaries name
  let put_summary t name s = Hashtbl.replace t.summaries name s

  let summary_names t =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.summaries []
    |> List.sort String.compare

  let hist ?sub_bits t name =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
        let h = Hist.create ?sub_bits () in
        Hashtbl.add t.hists name h;
        h

  let hist_opt t name = Hashtbl.find_opt t.hists name
  let put_hist t name h = Hashtbl.replace t.hists name h

  let hist_names t =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.hists []
    |> List.sort String.compare

  let reset_all t =
    Hashtbl.iter (fun _ c -> Counter.reset c) t.counters;
    Hashtbl.iter (fun _ s -> Summary.clear s) t.summaries;
    Hashtbl.iter (fun _ h -> Hist.clear h) t.hists
end

module Snapshot = struct
  type t = (string * float) list

  let take reg =
    List.map (fun name -> (name, Registry.value reg name)) (Registry.names reg)

  let get t name =
    match List.assoc_opt name t with Some v -> v | None -> 0.

  let to_list t = t

  let diff ~before ~after =
    let names =
      List.sort_uniq String.compare (List.map fst before @ List.map fst after)
    in
    List.filter_map
      (fun name ->
        let d = get after name -. get before name in
        if d <> 0. then Some (name, d) else None)
      names
end
