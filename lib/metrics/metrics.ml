module Counter = struct
  type t = { mutable value : float }

  let create () = { value = 0. }
  let incr ?(by = 1.) t = t.value <- t.value +. by
  let value t = t.value
  let reset t = t.value <- 0.
end

module Summary = struct
  (* Welford moments plus a deterministic systematic-thinning reservoir
     for percentiles: with [capacity = 0] (unbounded) every observation
     is retained and percentiles are exact; with a bound, the reservoir
     keeps every [stride]-th observation and, when full, halves the
     retained set and doubles the stride. No randomness is involved, so
     simulation runs stay a pure function of their seed. *)
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    capacity : int;  (* 0 = unbounded *)
    mutable stride : int;
    mutable pending : int;  (* observations since the last retained one *)
    mutable kept : float array;
    mutable n_kept : int;
    mutable sorted : float array option;
  }

  let create ?(capacity = 0) () =
    if capacity < 0 || capacity = 1 then
      invalid_arg "Metrics.Summary.create: capacity must be 0 or >= 2";
    {
      count = 0;
      mean = 0.;
      m2 = 0.;
      min = infinity;
      max = neg_infinity;
      capacity;
      stride = 1;
      pending = 0;
      kept = (if capacity = 0 then [||] else Array.make capacity 0.);
      n_kept = 0;
      sorted = None;
    }

  (* Halve the retained set in place (keeping every other value, oldest
     first) and double the stride. *)
  let thin t =
    let half = (t.n_kept + 1) / 2 in
    for i = 0 to half - 1 do
      t.kept.(i) <- t.kept.(2 * i)
    done;
    t.n_kept <- half;
    t.stride <- t.stride * 2

  let keep t x =
    if t.n_kept = Array.length t.kept then
      if t.capacity > 0 then thin t
      else begin
        let bigger = Array.make (Stdlib.max 8 (2 * t.n_kept)) 0. in
        Array.blit t.kept 0 bigger 0 t.n_kept;
        t.kept <- bigger
      end;
    t.kept.(t.n_kept) <- x;
    t.n_kept <- t.n_kept + 1

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.pending <- t.pending + 1;
    if t.pending >= t.stride then begin
      t.pending <- 0;
      keep t x
    end;
    t.sorted <- None

  let count t = t.count
  let mean t = t.mean

  let stddev t =
    if t.count < 2 then 0. else sqrt (t.m2 /. float_of_int (t.count - 1))

  let min t = t.min
  let max t = t.max

  let percentile t p =
    if t.count = 0 then invalid_arg "Metrics.Summary.percentile: empty";
    if p < 0. || p > 100. then
      invalid_arg "Metrics.Summary.percentile: p out of [0,100]";
    let sorted =
      match t.sorted with
      | Some a -> a
      | None ->
          let a = Array.sub t.kept 0 t.n_kept in
          Array.sort compare a;
          t.sorted <- Some a;
          a
    in
    let n = Array.length sorted in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) rank))

  let merge a b =
    let capacity =
      if a.capacity = 0 || b.capacity = 0 then 0
      else Stdlib.max a.capacity b.capacity
    in
    let t = create ~capacity () in
    t.count <- a.count + b.count;
    if t.count > 0 then begin
      let ca = float_of_int a.count and cb = float_of_int b.count in
      let delta = b.mean -. a.mean in
      t.mean <- a.mean +. (delta *. cb /. (ca +. cb));
      t.m2 <- a.m2 +. b.m2 +. (delta *. delta *. ca *. cb /. (ca +. cb))
    end;
    t.min <- Stdlib.min a.min b.min;
    t.max <- Stdlib.max a.max b.max;
    t.stride <- Stdlib.max a.stride b.stride;
    let vals = Array.append (Array.sub a.kept 0 a.n_kept) (Array.sub b.kept 0 b.n_kept) in
    if capacity = 0 || Array.length vals <= capacity then begin
      t.kept <- (if capacity = 0 then vals else t.kept);
      if capacity > 0 then Array.blit vals 0 t.kept 0 (Array.length vals);
      t.n_kept <- Array.length vals
    end
    else begin
      Array.blit vals 0 t.kept 0 capacity;
      (* Merge order: fill with the first [capacity] values, then thin
         as the rest stream in — same policy as [add]. *)
      t.n_kept <- capacity;
      for i = capacity to Array.length vals - 1 do
        keep t vals.(i)
      done
    end;
    t

  let clear t =
    t.count <- 0;
    t.mean <- 0.;
    t.m2 <- 0.;
    t.min <- infinity;
    t.max <- neg_infinity;
    t.stride <- 1;
    t.pending <- 0;
    t.n_kept <- 0;
    t.sorted <- None

  let pp fmt t =
    if t.count = 0 then Format.fprintf fmt "(empty)"
    else
      Format.fprintf fmt "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p99=%.3f max=%.3f"
        t.count t.mean (stddev t) t.min (percentile t 50.) (percentile t 99.)
        t.max
end

module Registry = struct
  type t = {
    counters : (string, Counter.t) Hashtbl.t;
    summaries : (string, Summary.t) Hashtbl.t;
  }

  let create () : t =
    { counters = Hashtbl.create 32; summaries = Hashtbl.create 8 }

  let counter t name =
    match Hashtbl.find_opt t.counters name with
    | Some c -> c
    | None ->
        let c = Counter.create () in
        Hashtbl.add t.counters name c;
        c

  let incr ?by t name = Counter.incr ?by (counter t name)

  let value t name =
    match Hashtbl.find_opt t.counters name with
    | Some c -> Counter.value c
    | None -> 0.

  let names t =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.counters []
    |> List.sort String.compare

  let summary ?capacity t name =
    match Hashtbl.find_opt t.summaries name with
    | Some s -> s
    | None ->
        let s = Summary.create ?capacity () in
        Hashtbl.add t.summaries name s;
        s

  let summary_opt t name = Hashtbl.find_opt t.summaries name
  let put_summary t name s = Hashtbl.replace t.summaries name s

  let summary_names t =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.summaries []
    |> List.sort String.compare

  let reset_all t =
    Hashtbl.iter (fun _ c -> Counter.reset c) t.counters;
    Hashtbl.iter (fun _ s -> Summary.clear s) t.summaries
end

module Snapshot = struct
  type t = (string * float) list

  let take reg =
    List.map (fun name -> (name, Registry.value reg name)) (Registry.names reg)

  let get t name =
    match List.assoc_opt name t with Some v -> v | None -> 0.

  let to_list t = t

  let diff ~before ~after =
    let names =
      List.sort_uniq String.compare (List.map fst before @ List.map fst after)
    in
    List.filter_map
      (fun name ->
        let d = get after name -. get before name in
        if d <> 0. then Some (name, d) else None)
      names
end
