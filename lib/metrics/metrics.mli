(** Counters and summary statistics for the simulation harness.

    Table 1 of the paper accounts operations in four currencies:
    messages, network bandwidth (in block-size units), disk reads and
    disk writes. A {!Registry} holds named monotonic counters for
    those, and benchmarks measure an operation by snapshotting the
    registry before and after ({!Snapshot.diff}). The registry also
    holds named {!Summary} distributions — the observability layer
    materializes per-operation and per-phase latency histograms into
    them. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:float -> t -> unit
  val value : t -> float
  val reset : t -> unit
end

module Summary : sig
  type t
  (** Streaming summary of a series of observations: count, mean,
      standard deviation (Welford), min, max, and a retained sample of
      the raw values for percentiles. *)

  val create : ?capacity:int -> unit -> t
  (** [create ()] retains {e every} observation, so percentiles are
      exact — fine at simulation scale, unbounded memory at production
      scale. [create ~capacity ()] bounds retention to [capacity]
      values with a deterministic systematic-thinning reservoir: values
      are kept at a fixed stride, and when the reservoir fills, every
      other retained value is discarded and the stride doubles.

      Exactness trade-off: while [count <= capacity] the reservoir
      holds every observation and percentiles are exact; beyond that
      they are computed over an evenly spaced subsample of roughly
      [capacity/2 .. capacity] values, so a percentile can be off by
      about one stride's worth of rank. [count], [mean], [stddev],
      [min] and [max] are always exact. Thinning is deterministic (no
      randomness), so summaries never perturb seeded simulation runs.
      @raise Invalid_argument if [capacity] is 1 or negative
      ([capacity = 0] means unbounded). *)

  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [0,100]; nearest-rank over the
      retained values (exact when nothing has been thinned).
      @raise Invalid_argument on an empty summary or out-of-range [p]. *)

  val merge : t -> t -> t
  (** [merge a b] is a fresh summary describing the union of both
      series: exact pooled count/mean/variance/min/max (Welford
      combination), retained values concatenated for percentiles. The
      inputs are not modified. The result is unbounded if either input
      is; otherwise its capacity is the larger of the two and the
      concatenated values are thinned to fit. Merging an empty summary
      is the identity. *)

  val clear : t -> unit
  (** Reset to the empty state (capacity is kept). *)

  val pp : Format.formatter -> t -> unit
end

module Registry : sig
  type t

  val create : unit -> t

  val counter : t -> string -> Counter.t
  (** [counter t name] returns the counter registered under [name],
      creating it on first use. The same name always yields the same
      counter. *)

  val incr : ?by:float -> t -> string -> unit
  (** [incr t name] bumps the named counter (creating it if needed). *)

  val value : t -> string -> float
  (** [value t name] is the counter's current value ([0.] if the name
      was never used). *)

  val names : t -> string list
  (** All registered counter names, sorted. *)

  val summary : ?capacity:int -> t -> string -> Summary.t
  (** [summary t name] returns the summary registered under [name],
      creating it (with [capacity], see {!Summary.create}) on first
      use. [capacity] is ignored on later lookups. *)

  val summary_opt : t -> string -> Summary.t option

  val put_summary : t -> string -> Summary.t -> unit
  (** Install (or replace) a summary object under a name — used by the
      observability layer to materialize derived distributions. *)

  val summary_names : t -> string list
  (** All registered summary names, sorted. *)

  val reset_all : t -> unit
  (** Reset every counter to 0 and clear every summary. *)
end

module Snapshot : sig
  type t

  val take : Registry.t -> t
  val diff : before:t -> after:t -> (string * float) list
  (** [diff ~before ~after] lists counters whose value changed, with
      the increment, sorted by name. *)

  val get : t -> string -> float
  val to_list : t -> (string * float) list
end
