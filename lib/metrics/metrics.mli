(** Counters and summary statistics for the simulation harness.

    Table 1 of the paper accounts operations in four currencies:
    messages, network bandwidth (in block-size units), disk reads and
    disk writes. A {!Registry} holds named monotonic counters for
    those, and benchmarks measure an operation by snapshotting the
    registry before and after ({!Snapshot.diff}). The registry also
    holds named {!Summary} distributions — the observability layer
    materializes per-operation and per-phase latency histograms into
    them. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:float -> t -> unit
  val value : t -> float
  val reset : t -> unit
end

module Summary : sig
  type t
  (** Streaming summary of a series of observations: count, mean,
      standard deviation (Welford), min, max, and a retained sample of
      the raw values for percentiles. *)

  val create : ?capacity:int -> unit -> t
  (** [create ()] retains {e every} observation, so percentiles are
      exact — fine at simulation scale, unbounded memory at production
      scale. [create ~capacity ()] bounds retention to [capacity]
      values with a deterministic systematic-thinning reservoir: values
      are kept at a fixed stride, and when the reservoir fills, every
      other retained value is discarded and the stride doubles.

      Exactness trade-off: while [count <= capacity] the reservoir
      holds every observation and percentiles are exact; beyond that
      they are computed over an evenly spaced subsample of roughly
      [capacity/2 .. capacity] values, so a percentile can be off by
      about one stride's worth of rank. [count], [mean], [stddev],
      [min] and [max] are always exact. Thinning is deterministic (no
      randomness), so summaries never perturb seeded simulation runs.
      @raise Invalid_argument if [capacity] is 1 or negative
      ([capacity = 0] means unbounded). *)

  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float

  val percentile : t -> float -> float
  (** [percentile t p] with [p] in [0,100]; nearest-rank over the
      retained values (exact when nothing has been thinned).
      @raise Invalid_argument on an empty summary or out-of-range [p]. *)

  val merge : t -> t -> t
  (** [merge a b] is a fresh summary describing the union of both
      series: exact pooled count/mean/variance/min/max (Welford
      combination), retained values concatenated for percentiles. The
      inputs are not modified. The result is unbounded if either input
      is; otherwise its capacity is the larger of the two and the
      concatenated values are thinned to fit. Merging an empty summary
      is the identity. *)

  val clear : t -> unit
  (** Reset to the empty state (capacity is kept). *)

  val pp : Format.formatter -> t -> unit
end

module Hist : sig
  type t
  (** Log-bucketed (HDR-style) histogram over non-negative finite
      floats. Each power-of-two octave is split into [2^sub_bits]
      equal-width sub-buckets, so the quantization error of any
      reported percentile is bounded by {!relative_error} of the true
      value — independent of the value range and the observation
      count. Counts are exact integers and memory grows only with the
      number of octaves spanned ([log2 (max/min)]), never with the
      number of observations: the constant-memory companion to the
      sampling {!Summary}, trustworthy at p99.9 over millions of
      observations. *)

  val create : ?sub_bits:int -> unit -> t
  (** [sub_bits] (default 5, i.e. 32 sub-buckets per octave, ≤ 3.125%
      relative error) sets the precision/memory trade-off.
      @raise Invalid_argument unless [1 <= sub_bits <= 12]. *)

  val sub_bits : t -> int

  val relative_error : t -> float
  (** [2^-sub_bits]: any percentile is within this relative distance
      of some true sample value at the same rank. *)

  val add : ?count:int -> t -> float -> unit
  (** Record [count] (default 1) observations of a value.
      @raise Invalid_argument on a negative count or a negative,
      infinite or NaN value. *)

  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float

  val percentile : t -> float -> float
  (** Nearest-rank percentile over the exact bucket counts; the
      returned value is the containing bucket's midpoint clamped into
      [[min, max]], hence within {!relative_error} of the true sample
      at that rank. @raise Invalid_argument on an empty histogram or
      [p] outside [0,100]. *)

  val count_above : t -> float -> int
  (** Observations strictly above a threshold, at bucket granularity
      (the threshold's own bucket is excluded, so the result may
      undercount by at most one bucket's population). Used for SLO
      error budgets ("requests over the latency limit"). *)

  val merge : t -> t -> t
  (** Pooled histogram; the inputs are unchanged. Merging is exact
      (bucket counts add index-to-index) and associative on every
      observable except [mean] (float addition). Merging an empty
      histogram is the identity.
      @raise Invalid_argument if the precisions differ. *)

  val merge_into : dst:t -> t -> unit
  (** In-place {!merge}. *)

  val buckets : t -> (float * float * int) list
  (** Non-empty buckets as [(lower, upper, count)], ascending; an
      exact zero bucket reports as [(0., 0., n)]. For serialization
      and sparkline rendering. *)

  val clear : t -> unit
  val pp : Format.formatter -> t -> unit
end

module Timeseries : sig
  type t
  (** Named counters and histograms bucketed per fixed window of
      simulated time: window [w] covers [[w*width, (w+1)*width)].
      Cells materialize on first touch, so memory scales with the
      number of active (name, window) pairs. The observability layer
      feeds one of these from the event hub to get
      latency-over-time, per-brick queue depth, goodput and
      retransmit series without touching instrumentation sites. *)

  val create : ?hist_bits:int -> width:float -> unit -> t
  (** [width] is the window length in (simulated) time units;
      [hist_bits] the precision of per-window histograms (see
      {!Hist.create}). @raise Invalid_argument if [width <= 0]. *)

  val width : t -> float

  val window_of : t -> float -> int
  (** The window index containing a time. *)

  val window_start : t -> int -> float

  val span : t -> (int * int) option
  (** [(first, last)] window index touched so far, [None] if no data. *)

  val incr : t -> time:float -> ?by:float -> string -> unit
  (** Bump the named counter in the window containing [time]. *)

  val observe : t -> time:float -> string -> float -> unit
  (** Record a value into the named histogram of the window containing
      [time]. @raise Invalid_argument on negative/non-finite values
      (see {!Hist.add}). *)

  val counter_names : t -> string list
  val hist_names : t -> string list

  val counter : t -> string -> int -> float
  (** Counter value in one window ([0.] where never touched). *)

  val hist : t -> string -> int -> Hist.t option

  val counter_series : t -> string -> (int * float) list
  (** One entry per window of {!span} (zero-filled), ascending. *)

  val hist_series : t -> string -> (int * Hist.t option) list

  val percentile_series : t -> string -> float -> (int * float option) list
  (** Per-window percentile; [None] where the window has no data. *)

  val total : t -> string -> float
  (** Sum of a counter over all windows. *)

  val merged_hist : t -> string -> Hist.t option
  (** All windows of a histogram pooled ({!Hist.merge}); [None] if the
      name has no data at all. *)
end

module Registry : sig
  type t

  val create : unit -> t

  val counter : t -> string -> Counter.t
  (** [counter t name] returns the counter registered under [name],
      creating it on first use. The same name always yields the same
      counter. *)

  val incr : ?by:float -> t -> string -> unit
  (** [incr t name] bumps the named counter (creating it if needed). *)

  val value : t -> string -> float
  (** [value t name] is the counter's current value ([0.] if the name
      was never used). *)

  val names : t -> string list
  (** All registered counter names, sorted. *)

  val summary : ?capacity:int -> t -> string -> Summary.t
  (** [summary t name] returns the summary registered under [name],
      creating it (with [capacity], see {!Summary.create}) on first
      use. [capacity] is ignored on later lookups. *)

  val summary_opt : t -> string -> Summary.t option

  val put_summary : t -> string -> Summary.t -> unit
  (** Install (or replace) a summary object under a name — used by the
      observability layer to materialize derived distributions. *)

  val summary_names : t -> string list
  (** All registered summary names, sorted. *)

  val hist : ?sub_bits:int -> t -> string -> Hist.t
  (** [hist t name] returns the histogram registered under [name],
      creating it (with [sub_bits], see {!Hist.create}) on first use.
      [sub_bits] is ignored on later lookups. *)

  val hist_opt : t -> string -> Hist.t option

  val put_hist : t -> string -> Hist.t -> unit
  (** Install (or replace) a histogram under a name — used by the
      observability layer to materialize derived distributions. *)

  val hist_names : t -> string list
  (** All registered histogram names, sorted. *)

  val reset_all : t -> unit
  (** Reset every counter to 0 and clear every summary and histogram. *)
end

module Snapshot : sig
  type t

  val take : Registry.t -> t
  val diff : before:t -> after:t -> (string * float) list
  (** [diff ~before ~after] lists counters whose value changed, with
      the increment, sorted by name. *)

  val get : t -> string -> float
  val to_list : t -> (string * float) list
end
