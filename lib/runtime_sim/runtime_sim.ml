(* The deterministic backend: a thin veneer over Dessim. Every
   closure compiles to exactly the engine/fiber call the protocol
   layers used to make directly, in the same order, so a ported layer
   produces byte-identical runs (the dessim-path regression tests pin
   this down). *)

module Engine = Dessim.Engine
module Fiber = Dessim.Fiber

type gate_state =
  | Empty
  | Waiting of unit Fiber.resumer
  | Opened
  | Aborted

let gate () =
  let state = ref Empty in
  {
    Runtime.await =
      (fun () ->
        match !state with
        | Opened -> ()
        | Aborted -> raise Runtime.Cancelled
        | Waiting _ -> invalid_arg "Runtime_sim.gate: double await"
        | Empty -> Fiber.suspend (fun r -> state := Waiting r));
    open_ =
      (fun () ->
        match !state with
        | Empty -> state := Opened
        | Waiting r ->
            state := Opened;
            Fiber.resume r ()
        | Opened | Aborted -> ());
    abort =
      (fun () ->
        match !state with
        | Empty -> state := Aborted
        | Waiting r ->
            state := Aborted;
            Fiber.cancel r
        | Opened | Aborted -> ());
    live =
      (fun () -> match !state with Empty | Waiting _ -> true | _ -> false);
  }

let of_engine engine =
  {
    Runtime.name = "sim";
    now = (fun () -> Engine.now engine);
    rng = (fun () -> Engine.rng engine);
    spawn = Fiber.spawn;
    yield =
      (fun () ->
        Fiber.suspend (fun r ->
            ignore
              (Engine.schedule engine ~delay:0. (fun () -> Fiber.resume r ()))));
    timer =
      (fun ~delay f ->
        let ev = Engine.schedule engine ~delay f in
        { Runtime.tcancel = (fun () -> Engine.cancel ev) });
    gate;
    (* Delegate to the fiber join verbatim: its exact scheduling is
       what the pipelining tests fixed, and [all_generic] would add a
       (harmless but pointless) mutex per join. *)
    all =
      (fun window thunks ->
        match window with
        | None -> Fiber.all thunks
        | Some w -> Fiber.all ~window:w thunks);
  }
