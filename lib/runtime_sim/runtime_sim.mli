(** The deterministic runtime backend: Dessim wrapped as a
    {!Runtime.t}. Virtual time, cooperative fibers, all randomness
    from the engine's seeded stream — the reproducible oracle the
    chaos and linearizability harnesses run on. *)

val of_engine : Dessim.Engine.t -> Runtime.t
(** [of_engine e] is a runtime whose [now]/[rng]/[spawn]/[timer]
    compile to exactly the corresponding [Dessim] calls; code ported
    from direct engine use to the runtime produces byte-identical
    runs. *)
