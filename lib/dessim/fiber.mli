(** Lightweight cooperative fibers on OCaml effect handlers.

    Protocol coordinators in the paper are sequential procedures that
    block on quorum replies ([quorum()] in Algorithm 1). Fibers let us
    write them in direct style inside the single-threaded simulator: a
    fiber suspends by performing an effect, and whoever holds the
    {!resumer} wakes it (or cancels it, modelling a coordinator crash).

    Fibers never run in parallel: resuming a fiber executes it
    immediately, inside the caller, until its next suspension point.
    This mirrors an event-driven process and keeps runs deterministic. *)

exception Cancelled
(** Raised inside a fiber whose pending suspension was {!cancel}ed;
    models the coordinator process crashing mid-operation. The same
    constructor as {!Runtime.Cancelled}, so runtime-generic code needs
    only one handler. *)

type 'a resumer
(** A one-shot capability to wake a suspended fiber with an ['a]. *)

val spawn : (unit -> unit) -> unit
(** [spawn f] runs [f] as a fiber, immediately, until it finishes or
    first suspends. An escaping {!Cancelled} terminates the fiber
    silently; any other escaping exception is re-raised to the caller
    that happened to be running the fiber (usually the simulation
    engine), since it indicates a bug. *)

val suspend : ('a resumer -> unit) -> 'a
(** [suspend register] suspends the current fiber and hands a resumer
    to [register]; returns the value later passed to {!resume}. Must be
    called from inside a fiber.
    @raise Cancelled if the suspension is cancelled. *)

val resume : 'a resumer -> 'a -> unit
(** [resume r v] wakes the fiber with [v], running it synchronously
    until it finishes or suspends again. Resuming a dead (already
    resumed or cancelled) resumer is a no-op, so races between a reply
    arrival and a timeout need no extra bookkeeping. *)

val cancel : _ resumer -> unit
(** [cancel r] wakes the fiber with {!Cancelled}. No-op on a dead
    resumer. *)

val is_live : _ resumer -> bool
(** [is_live r] is [true] until [r] has been resumed or cancelled. *)

val all : ?window:int -> (unit -> 'a) list -> 'a list
(** [all ?window thunks] runs every thunk as a child fiber with at most
    [window] (default: unbounded) in flight at once, waits for all of
    them, and returns their results in input order. Launch order is
    input order; as a child finishes, the next unlaunched thunk starts.
    Must be called from inside a fiber whenever any thunk can suspend.

    If a child is cancelled ({!Cancelled} escapes it), no further
    thunks are launched, the remaining live children are left to settle
    (they are typically being cancelled by the same crash), and once
    none remain the join re-raises [Cancelled] in the parent. Any other
    escaping exception propagates like it does under {!spawn}.
    @raise Invalid_argument if [window < 1]. *)
