(* Binary-heap event queue keyed by (time, sequence number): the
   sequence number makes same-instant events fire in scheduling order,
   which keeps runs deterministic. *)

type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
  mutable owner : t option;
      (* The engine the event is queued on, [None] once it fired (or for
         the heap's dummy filler), so a late [cancel] of a fired timer
         cannot disturb the live-event count. *)
}

and t = {
  mutable clock : float;
  mutable heap : event array;
  mutable size : int;
  mutable live : int;  (* queued events that are not cancelled *)
  mutable next_seq : int;
  rng : Random.State.t;
  mutable chooser : (int -> int) option;
  mutable observer : (now:float -> pending:int -> unit) option;
}

type timer = event

let dummy_event =
  { time = 0.; seq = 0; action = ignore; cancelled = true; owner = None }

let create ?(seed = 42) () =
  {
    clock = 0.0;
    heap = Array.make 64 dummy_event;
    size = 0;
    live = 0;
    next_seq = 0;
    rng = Random.State.make [| seed |];
    chooser = None;
    observer = None;
  }

let now t = t.clock
let rng t = t.rng
let pending t = t.live

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) t.heap.(0) in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let schedule t ~delay action =
  if delay < 0.0 then invalid_arg "Dessim.Engine.schedule: negative delay";
  let ev =
    {
      time = t.clock +. delay;
      seq = t.next_seq;
      action;
      cancelled = false;
      owner = Some t;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  grow t;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  ev

(* Rebuild the heap keeping only non-cancelled events. Floyd heapify
   preserves the (time, seq) order relation, so the schedule is
   unchanged; only dead entries (and their retained closures) go. *)
let compact t =
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    let ev = t.heap.(i) in
    if not ev.cancelled then begin
      t.heap.(!j) <- ev;
      incr j
    end
  done;
  for i = !j to t.size - 1 do
    t.heap.(i) <- dummy_event
  done;
  t.size <- !j;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

(* Cancelled timers (every completed quorum call leaves one or two)
   stay in the heap until popped; compact once they outnumber the live
   events, with a floor so small queues never bother. *)
let maybe_compact t =
  if t.size >= 64 && t.size - t.live > t.live then compact t

let cancel ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    match ev.owner with
    | None -> ()
    | Some t ->
        t.live <- t.live - 1;
        maybe_compact t
  end

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy_event;
    sift_down t 0;
    Some top
  end

(* An event leaves the live count when it fires; clearing [owner]
   makes a later [cancel] of the fired timer a no-op on the count. *)
let fired t ev =
  ev.owner <- None;
  t.live <- t.live - 1

let set_chooser t chooser = t.chooser <- chooser

(* Pop every live event scheduled for the earliest instant; used when a
   chooser is installed to expose the simultaneous set. *)
let pop_simultaneous t =
  let rec first () =
    match pop t with
    | None -> None
    | Some ev -> if ev.cancelled then first () else Some ev
  in
  match first () with
  | None -> []
  | Some head ->
      let batch = ref [ head ] in
      let continue_ = ref true in
      while !continue_ do
        if t.size = 0 then continue_ := false
        else if t.heap.(0).cancelled then ignore (pop t)
        else if t.heap.(0).time = head.time then
          batch := Option.get (pop t) :: !batch
        else continue_ := false
      done;
      (* Restore scheduling order within the batch. *)
      List.sort (fun a b -> compare a.seq b.seq) !batch

let rec step_inner t =
  match t.chooser with
  | Some choose -> (
      match pop_simultaneous t with
      | [] -> false
      | [ ev ] ->
          t.clock <- ev.time;
          fired t ev;
          ev.action ();
          true
      | batch ->
          let k = List.length batch in
          let idx = choose k in
          if idx < 0 || idx >= k then
            invalid_arg "Dessim.Engine: chooser index out of range";
          let chosen = List.nth batch idx in
          (* Re-queue the others without disturbing their relative
             order (seq numbers are preserved). *)
          List.iteri
            (fun i ev ->
              if i <> idx then begin
                grow t;
                t.heap.(t.size) <- ev;
                t.size <- t.size + 1;
                sift_up t (t.size - 1)
              end)
            batch;
          t.clock <- chosen.time;
          fired t chosen;
          chosen.action ();
          true)
  | None -> (
      match pop t with
      | None -> false
      | Some ev ->
          if ev.cancelled then step_inner t
          else begin
            assert (ev.time >= t.clock);
            t.clock <- ev.time;
            fired t ev;
            ev.action ();
            true
          end)

let set_observer t observer = t.observer <- observer

(* One branch per executed event when no observer is installed. *)
let step t =
  let progressed = step_inner t in
  (match t.observer with
  | None -> ()
  | Some f -> if progressed then f ~now:t.clock ~pending:t.live);
  progressed

let peek_live t =
  (* Reap cancelled events from the top so that [run ~until] never
     advances the clock just to discard dead timers. *)
  let rec loop () =
    if t.size = 0 then None
    else if t.heap.(0).cancelled then begin
      ignore (pop t);
      loop ()
    end
    else Some t.heap.(0)
  in
  loop ()

let run ?until t =
  let continue_past time =
    match until with None -> true | Some limit -> time <= limit
  in
  let rec loop () =
    match peek_live t with
    | None -> ()
    | Some ev ->
        if continue_past ev.time then begin
          ignore (step t);
          loop ()
        end
        else
          (* Leave future events queued but advance the clock to the
             horizon so that repeated bounded runs make progress. *)
          match until with Some limit -> t.clock <- limit | None -> ()
  in
  loop ()
