(** Deterministic discrete-event simulation engine.

    The engine owns a virtual clock and a priority queue of events.
    Events scheduled for the same instant fire in scheduling order, and
    all randomness flows through the engine's seeded generator, so a
    run is a pure function of its seed. This engine is the stand-in for
    the paper's asynchronous distributed system: message delays, crash
    and recovery times, and timer expirations are all just events. *)

type t
(** A simulation engine. *)

val create : ?seed:int -> unit -> t
(** [create ?seed ()] is a fresh engine at time [0.0]. The default seed
    is [42]. *)

val now : t -> float
(** Current virtual time. *)

val rng : t -> Random.State.t
(** The engine's random state; all simulation randomness must come from
    here to keep runs reproducible. *)

type timer
(** Handle on a scheduled event, used for cancellation. *)

val schedule : t -> delay:float -> (unit -> unit) -> timer
(** [schedule t ~delay f] runs [f] at time [now t +. delay].
    @raise Invalid_argument if [delay] is negative. *)

val cancel : timer -> unit
(** [cancel timer] prevents the event from firing; cancelling a fired
    or already-cancelled timer is a no-op. *)

val run : ?until:float -> t -> unit
(** [run ?until t] processes events in time order until the queue is
    empty, or until virtual time would exceed [until] (events after
    [until] stay queued and the clock is left at [until]). *)

val step : t -> bool
(** [step t] processes a single event; [false] if the queue was empty. *)

val set_chooser : t -> (int -> int) option -> unit
(** [set_chooser t (Some f)] makes the engine consult [f] whenever more
    than one live event is scheduled for the earliest instant: [f k]
    must return an index in [0, k) selecting which fires next (their
    order of presentation is scheduling order). [None] restores the
    default FIFO tie-break. Systematic schedule exploration — running
    the same scenario under every choice sequence — is built on this
    hook (see the Explore test module). *)

val pending : t -> int
(** Number of live events still queued: cancelled-but-unreaped timers
    are not counted (the engine compacts its heap when they pile up). *)

val set_observer : t -> (now:float -> pending:int -> unit) option -> unit
(** [set_observer t (Some f)] calls [f ~now ~pending] after every
    executed event — the observability layer samples the event-queue
    depth through this. [None] (the default) removes the probe; the
    unobserved engine pays one branch per event. The observer must not
    schedule or cancel events. *)
