(* Rebound, not fresh: the runtime abstraction (lib/runtime) and the
   fibers raise the same constructor, so protocol code ported to
   Runtime catches cancellation identically on both backends. *)
exception Cancelled = Runtime.Cancelled

type 'a resumer = {
  mutable state : 'a state;
}

and 'a state =
  | Waiting of ('a, unit) Effect.Deep.continuation
  | Dead

type _ Effect.t += Suspend : ('a resumer -> unit) -> 'a Effect.t

let handler : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> ());
    exnc =
      (fun exn ->
        match exn with Cancelled -> () | _ -> raise exn);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend register ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let r = { state = Waiting k } in
                register r)
        | _ -> None);
  }

let spawn f = Effect.Deep.match_with f () handler

let suspend register = Effect.perform (Suspend register)

let resume r v =
  match r.state with
  | Dead -> ()
  | Waiting k ->
      r.state <- Dead;
      Effect.Deep.continue k v

let cancel r =
  match r.state with
  | Dead -> ()
  | Waiting k ->
      r.state <- Dead;
      Effect.Deep.discontinue k Cancelled

let is_live r = match r.state with Waiting _ -> true | Dead -> false

(* Scatter-gather join. Children are ordinary spawned fibers; the
   parent suspends until the last child settles. Cancellation of any
   child (a coordinator crash tearing down its pending calls) stops
   further launches, lets the already-launched children drain, and then
   re-raises Cancelled in the parent, so a cancelled join behaves like
   a cancelled sequential loop. *)
let all ?(window = max_int) thunks =
  if window < 1 then invalid_arg "Dessim.Fiber.all: window < 1";
  match thunks with
  | [] -> []
  | _ ->
      let thunks = Array.of_list thunks in
      let n = Array.length thunks in
      let results = Array.make n None in
      let cancelled = ref false in
      let active = ref 0 in
      let next = ref 0 in
      let parent = ref None in
      let settle () =
        if !active = 0 && (!cancelled || !next >= n) then
          match !parent with
          | Some r ->
              parent := None;
              resume r ()
          | None -> ()
      in
      let rec launch () =
        let i = !next in
        incr next;
        incr active;
        spawn (fun () ->
            (match thunks.(i) () with
            | v ->
                results.(i) <- Some v;
                decr active
            | exception Cancelled ->
                cancelled := true;
                decr active;
                settle ();
                raise Cancelled);
            if (not !cancelled) && !next < n then launch ();
            settle ())
      in
      while !active < window && !next < n && not !cancelled do
        launch ()
      done;
      if !active > 0 then suspend (fun r -> parent := Some r);
      if !cancelled then raise Cancelled;
      Array.to_list (Array.map Option.get results)
