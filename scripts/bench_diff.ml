(* bench_diff: compare two BENCH_*.json files and fail on regressions.

   Usage:
     bench_diff OLD.json NEW.json [--threshold PCT] [--rule PAT:PCT]
                [--exact] [--ignore PATH] [--force] [--quiet]

   Both files are flattened to dotted leaf paths (arrays of objects are
   keyed by their "name"/"w" field when present, by index otherwise).
   Two modes:

   - default: numeric leaves present in both files are compared with a
     direction-aware rule (latency up = worse, throughput down = worse,
     ...); any metric worse by more than the threshold (default 10%) is
     a regression. --rule PAT:PCT overrides the threshold for paths
     containing PAT (PCT < 0 disables the check for those paths).
   - --exact: any differing or missing leaf is a failure — the
     determinism gate (same seed, same commit => identical report).

   Meta stamps guard against apples-to-oranges comparisons: if the two
   files disagree on gf_kernel / simd_level / geometry / workload
   shape / runtime backend / domain count the diff refuses to run
   (exit 2) unless --force is given — sim delta units and mc
   wall-clock seconds must never be compared as if commensurable.
   meta.date, meta.git and meta.ocaml_version are always ignored (they
   differ by commit or toolchain, not by behaviour).

   Exit codes: 0 = no regression, 1 = regression (or --exact
   difference), 2 = incompatible meta / unreadable input / usage. *)

(* ---------------- recursive JSON ---------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then fail "unexpected end of input";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c = if next () <> c then fail (Printf.sprintf "expected %c" c) in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' -> (
          (match next () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
              | Some _ -> Buffer.add_char b '?'
              | None -> fail "bad \\u escape")
          | _ -> fail "unknown escape");
          loop ())
      | c -> Buffer.add_char b c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let items = ref [] in
          let rec loop () =
            items := parse_value () :: !items;
            skip_ws ();
            match next () with
            | ',' -> loop ()
            | ']' -> ()
            | _ -> fail "expected , or ]"
          in
          loop ();
          Arr (List.rev !items)
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec loop () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match next () with
            | ',' -> loop ()
            | '}' -> ()
            | _ -> fail "expected , or }"
          in
          loop ();
          Obj (List.rev !fields)
        end
    | _ -> fail "expected value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes";
  v

(* ---------------- flattening ---------------- *)

(* Arrays of objects are keyed by a stable identity field when one
   exists, so inserting a window in the middle doesn't shift every
   later path. *)
let arr_key (item : json) =
  match item with
  | Obj fields -> (
      match List.assoc_opt "name" fields with
      | Some (Str s) -> Some s
      | _ -> (
          match List.assoc_opt "w" fields with
          | Some (Num w) -> Some (Printf.sprintf "w%g" w)
          | _ -> None))
  | _ -> None

let flatten (j : json) : (string * json) list =
  let out = ref [] in
  let rec go path j =
    match j with
    | Obj fields ->
        List.iter
          (fun (k, v) -> go (if path = "" then k else path ^ "." ^ k) v)
          fields
    | Arr items ->
        List.iteri
          (fun i item ->
            let key =
              match arr_key item with
              | Some k -> k
              | None -> string_of_int i
            in
            go (Printf.sprintf "%s[%s]" path key) item)
          items
    | leaf -> out := (path, leaf) :: !out
  in
  go "" j;
  List.rev !out

let leaf_str = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f -> Printf.sprintf "%.12g" f
  | Str s -> Printf.sprintf "%S" s
  | Arr _ | Obj _ -> "<tree>"

(* ---------------- direction classifier ---------------- *)

type dir = Worse_up | Worse_down | Neutral

let last_segment path =
  match String.rindex_opt path '.' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let direction path =
  let seg = last_segment path in
  (* strip an array suffix like "p99[3]" *)
  let seg =
    match String.index_opt seg '[' with
    | Some i -> String.sub seg 0 i
    | None -> seg
  in
  match seg with
  | "throughput" | "goodput" | "ok" | "mb_per_s" | "blocks_per_s" -> Worse_down
  (* BENCH_parallel.json rate fields: higher is better. Only the new
     implementation's cells are gated; the legacy-twin columns
     (single_calls_per_sec, legacy_msgs_per_sec) stay informational. *)
  | "ops_per_sec" | "sharded_calls_per_sec" | "batched_msgs_per_sec"
  | "arms_per_sec" | "speedup" | "speedup_vs_1" ->
      Worse_down
  | "mean" | "max" | "p50" | "p90" | "p95" | "p99" | "p999" | "stddev"
  | "aborts" | "unavailable" | "bad" | "burn" | "retransmits" | "drops"
  | "timeouts" | "elapsed" | "evicted" | "ns_per_block" | "msgs" | "bytes"
  | "net_blocks" | "disk_reads" | "disk_writes" | "nvram_writes" ->
      Worse_up
  | "p50_ms" | "p99_ms" | "elapsed_s" | "gc_minor_words_per_op" -> Worse_up
  (* BENCH_chaos.json: time-to-recover up = worse, availability under
     fault down = worse. *)
  | "ttr_p50" | "ttr_p99" | "ttr_max" | "ttr_mean" -> Worse_up
  | "availability_pct" -> Worse_down
  | _ ->
      (* cost trees are worse-up whatever the field name *)
      if contains path "cost_per_op" || contains path "table1" then Worse_up
      else Neutral

(* ---------------- CLI ---------------- *)

let usage () =
  prerr_endline
    "usage: bench_diff OLD.json NEW.json [--threshold PCT] [--rule PAT:PCT]\n\
    \       [--exact] [--ignore PATH] [--force] [--quiet]";
  exit 2

let read_file path =
  match open_in_bin path with
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
  | exception Sys_error msg ->
      Printf.eprintf "bench_diff: %s\n" msg;
      exit 2

let () =
  let files = ref [] in
  let threshold = ref 10. in
  let rules = ref [] in
  let exact = ref false in
  let ignored = ref [ "meta.date"; "meta.git"; "meta.ocaml_version" ] in
  let force = ref false in
  let quiet = ref false in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t >= 0. -> threshold := t
        | _ -> usage ());
        parse_args rest
    | "--rule" :: v :: rest ->
        (match String.rindex_opt v ':' with
        | Some i -> (
            let pat = String.sub v 0 i in
            match
              float_of_string_opt
                (String.sub v (i + 1) (String.length v - i - 1))
            with
            | Some pct -> rules := (pat, pct) :: !rules
            | None -> usage ())
        | None -> usage ());
        parse_args rest
    | "--exact" :: rest ->
        exact := true;
        parse_args rest
    | "--ignore" :: v :: rest ->
        ignored := v :: !ignored;
        parse_args rest
    | "--force" :: rest ->
        force := true;
        parse_args rest
    | "--quiet" :: rest ->
        quiet := true;
        parse_args rest
    | arg :: rest ->
        if String.length arg > 0 && arg.[0] = '-' then usage ();
        files := arg :: !files;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match List.rev !files with [ a; b ] -> (a, b) | _ -> usage ()
  in
  let load path =
    match parse_json (read_file path) with
    | j -> flatten j
    | exception Parse_error msg ->
        Printf.eprintf "bench_diff: %s: %s\n" path msg;
        exit 2
  in
  let old_leaves = load old_path in
  let new_leaves = load new_path in
  let ignored_path p = List.exists (fun pat -> contains p pat) !ignored in

  (* Refuse apples-to-oranges: both sides must agree on the stamps
     that change what is being measured (not just how well). *)
  let guard_keys =
    [
      "meta.gf_kernel"; "meta.simd_level"; "meta.geometries"; "meta.profiles";
      "meta.m"; "meta.n"; "meta.bricks"; "meta.stripes"; "meta.block_size";
      "meta.clients"; "meta.ops"; "meta.window"; "meta.faults"; "meta.slos";
      "meta.seed"; "meta.tool"; "meta.runtime"; "meta.domains";
    ]
  in
  let incompatible =
    List.filter_map
      (fun key ->
        match (List.assoc_opt key old_leaves, List.assoc_opt key new_leaves) with
        | Some a, Some b when a <> b -> Some (key, leaf_str a, leaf_str b)
        | _ -> None)
      guard_keys
  in
  if incompatible <> [] then begin
    List.iter
      (fun (key, a, b) ->
        Printf.eprintf "bench_diff: meta mismatch %s: %s vs %s\n" key a b)
      incompatible;
    if not !force then begin
      Printf.eprintf
        "bench_diff: refusing to compare different setups (use --force)\n";
      exit 2
    end
  end;

  let failures = ref 0 in
  let compared = ref 0 in
  let report fmt =
    Printf.ksprintf
      (fun s ->
        incr failures;
        if not !quiet then print_endline s)
      fmt
  in
  if !exact then begin
    List.iter
      (fun (path, v) ->
        if not (ignored_path path) then
          match List.assoc_opt path new_leaves with
          | None -> report "MISSING  %s (only in %s)" path old_path
          | Some v' ->
              incr compared;
              if v <> v' then
                report "DIFFERS  %s: %s -> %s" path (leaf_str v) (leaf_str v'))
      old_leaves;
    List.iter
      (fun (path, _) ->
        if (not (ignored_path path)) && not (List.mem_assoc path old_leaves)
        then report "ADDED    %s (only in %s)" path new_path)
      new_leaves
  end
  else
    List.iter
      (fun (path, v) ->
        let pct =
          match List.find_opt (fun (pat, _) -> contains path pat) !rules with
          | Some (_, pct) -> pct
          | None -> !threshold
        in
        if (not (ignored_path path)) && pct >= 0. then
          match (v, List.assoc_opt path new_leaves) with
          | Num old_v, Some (Num new_v) -> (
                match direction path with
                | Neutral -> ()
                | dir ->
                    incr compared;
                    let worse =
                      match dir with
                      | Worse_up -> new_v -. old_v
                      | Worse_down -> old_v -. new_v
                      | Neutral -> 0.
                    in
                    let base = Float.max (Float.abs old_v) 1e-9 in
                    let frac = worse /. base in
                    if frac *. 100. > pct then
                      report "REGRESSION  %-40s %s -> %s (%+.1f%% worse, limit %g%%)"
                        path (leaf_str v)
                        (leaf_str (Num new_v))
                        (frac *. 100.) pct)
          | Bool true, Some (Bool false) when last_segment path = "compliant"
            ->
              incr compared;
              report "REGRESSION  %-40s went non-compliant" path
          | _ -> ())
      old_leaves;
  if !failures > 0 then begin
    Printf.printf "bench_diff: %d failure(s) over %d compared leaves (%s vs %s)\n"
      !failures !compared old_path new_path;
    exit 1
  end
  else
    Printf.printf "bench_diff: OK (%d leaves compared, %s vs %s)\n" !compared
      old_path new_path
