#!/bin/sh
# Repository CI: build, run the full test suite, then smoke the two
# executable harnesses (microbenchmarks and the observability
# pipeline). Everything here must stay green on every commit.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== @bench-smoke (microbenchmark harness + split-kernel gate) =="
dune build @bench-smoke

echo "== micro bench per GF(2^8) kernel backend =="
# --list-kernels prints only the backends usable on this machine, so
# c_simd is skipped automatically where the SIMD stubs are gated off.
for k in $(dune exec bench/main.exe -- --list-kernels); do
  echo "-- FAB_GF_KERNEL=$k --"
  FAB_GF_KERNEL="$k" dune exec bench/main.exe -- micro --smoke
done

echo "== @obs-smoke (pipelined traced workload -> fab_sim explain) =="
dune build @obs-smoke

echo "== @bench-protocol-smoke (pipelining / elision / coalescing) =="
dune build @bench-protocol-smoke

echo "== @chaos-smoke (fault plans clean, unsafe variant caught) =="
dune build @chaos-smoke

echo "CI OK"
