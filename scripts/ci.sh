#!/bin/sh
# Repository CI: build, run the full test suite, then smoke the two
# executable harnesses (microbenchmarks and the observability
# pipeline). Everything here must stay green on every commit.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== @bench-smoke (microbenchmark harness) =="
dune build @bench-smoke

echo "== @obs-smoke (pipelined traced workload -> fab_sim explain) =="
dune build @obs-smoke

echo "== @bench-protocol-smoke (pipelining / elision / coalescing) =="
dune build @bench-protocol-smoke

echo "== @chaos-smoke (fault plans clean, unsafe variant caught) =="
dune build @chaos-smoke

echo "CI OK"
