#!/bin/sh
# Repository CI: build, run the full test suite, then smoke the two
# executable harnesses (microbenchmarks and the observability
# pipeline). Everything here must stay green on every commit.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== @bench-smoke (microbenchmark harness + split-kernel gate) =="
dune build @bench-smoke

echo "== micro bench per GF(2^8) kernel backend =="
# --list-kernels prints only the backends usable on this machine, so
# c_simd is skipped automatically where the SIMD stubs are gated off.
for k in $(dune exec bench/main.exe -- --list-kernels); do
  echo "-- FAB_GF_KERNEL=$k --"
  FAB_GF_KERNEL="$k" dune exec bench/main.exe -- micro --smoke
done

echo "== @obs-smoke (pipelined traced workload -> fab_sim explain) =="
dune build @obs-smoke

echo "== @bench-protocol-smoke (pipelining / elision / coalescing) =="
dune build @bench-protocol-smoke

echo "== @parallel-smoke (multicore backend, runtime assertions armed) =="
dune build @parallel-smoke

echo "== @chaos-smoke (fault plans clean, unsafe variant caught) =="
dune build @chaos-smoke

echo "== @chaos-mc-smoke (chaos under real parallelism, assertions armed) =="
dune build @chaos-mc-smoke

echo "== @report-smoke (geometry matrix report, deterministic + valid) =="
dune build @report-smoke

echo "== bench_diff self-test (exit codes 0 / 1 / 2) =="
# Three tiny fixtures: a baseline, a regressed copy (p99 doubled,
# throughput halved), and an incompatible copy (different gf_kernel).
# bench_diff must pass the identical pair, fail the regressed pair,
# and refuse the incompatible pair — each with its documented exit
# code, since scripts/ci-style wiring keys off exactly those.
BD="$(pwd)/_build/default/scripts/bench_diff.exe"
dune build scripts/bench_diff.exe
T="$(mktemp -d)"
trap 'rm -rf "$T"' EXIT
cat > "$T/base.json" <<'EOF'
{"meta": {"date": "2026-01-01T00:00:00Z", "gf_kernel": "table", "simd_level": 0, "seed": 1},
 "cells": [{"name": "rep-2/web", "latency": {"p50": 2.0, "p99": 6.0}, "throughput": 0.5, "slo": [{"name": "read p99 < 6", "compliant": true}]}]}
EOF
sed -e 's/"p99": 6.0/"p99": 12.0/' -e 's/"throughput": 0.5/"throughput": 0.2/' \
    -e 's/"compliant": true/"compliant": false/' "$T/base.json" > "$T/worse.json"
sed -e 's/"gf_kernel": "table"/"gf_kernel": "ref"/' "$T/base.json" > "$T/alien.json"
"$BD" "$T/base.json" "$T/base.json" --exact
rc=0; "$BD" "$T/base.json" "$T/worse.json" --threshold 10 || rc=$?
[ "$rc" -eq 1 ] || { echo "bench_diff: expected exit 1 on regression, got $rc"; exit 1; }
rc=0; "$BD" "$T/base.json" "$T/alien.json" >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "bench_diff: expected exit 2 on meta mismatch, got $rc"; exit 1; }
rc=0; "$BD" "$T/base.json" "$T/worse.json" --threshold 10 --rule p99:-1 --rule throughput:-1 --rule compliant:-1 >/dev/null || rc=$?
[ "$rc" -eq 0 ] || { echo "bench_diff: expected exit 0 with rules disabled, got $rc"; exit 1; }
echo "bench_diff self-test OK"

echo "== parallel contention gate (smoke run vs committed baseline) =="
# A debug-armed smoke run of the parallel section, diffed against the
# committed baseline. Wall-clock rates on a shared 1-core CI host are
# noisy, so the gate is deliberately generous (fail only when a rate
# drops by more than 75%) and skips the noisiest fields entirely:
# latency percentiles, speedup ratios, and the 2-domain mailbox cell
# (dominated by scheduler luck when domains exceed hardware cores).
# Per-op minor allocation is deterministic, so it gets a tight 25%.
FAB_RUNTIME_DEBUG=1 dune exec bench/main.exe -- parallel --smoke --json
"$BD" bench/baseline_parallel_smoke.json BENCH_parallel.smoke.json \
  --threshold 75 \
  --rule gc_minor_words_per_op:25 \
  --rule p50_ms:-1 --rule p99_ms:-1 --rule elapsed_s:-1 \
  --rule speedup:-1 \
  --rule micro_mailbox_d2:-1

echo "== chaos recovery-latency gate (smoke run vs committed baseline) =="
# Writes BENCH_chaos.smoke.json (never the committed BENCH_chaos.json
# baseline). The sim cells are deterministic (seeded engine, unit
# delays) and get the default threshold; the mc cells' time-to-recover
# percentiles are wall-clock on a shared host and are excluded from
# the gate (@chaos-mc-smoke already gates mc correctness). The
# faults-actually-bite property is not a bench_diff concern — it is
# pinned deterministically by the Faultnet-counter tests in
# test_chaos and by the sim cells' exact availability/ttr values.
dune exec bench/main.exe -- chaos --smoke --json
"$BD" bench/baseline_chaos_smoke.json BENCH_chaos.smoke.json \
  --rule mc_crash.ttr:-1 --rule mc_partition.ttr:-1

echo "CI OK"
