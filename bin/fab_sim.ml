(* fab_sim: command-line front end to the FAB simulator.

   Subcommands:
     workload  - run a synthetic workload against a simulated volume
     explain   - replay a JSONL trace into per-op phase breakdowns
     chaos     - sweep fault plans x seeds under a linearizability check
     mttdl     - reliability (figure 2/3 style) tables
     quorum    - m-quorum system parameters for a code geometry

   Examples:
     fab_sim workload -m 5 -n 8 --clients 4 --ops 500 --profile web
     fab_sim workload -m 5 -n 8 --trace-out run.jsonl --stats-json stats.json
     fab_sim explain run.jsonl --validate
     fab_sim chaos --seeds 50
     fab_sim chaos --plan crash-storm --chaos-unsafe-skip-order
     fab_sim mttdl --capacity 256
     fab_sim quorum -m 5 -n 8 *)

open Cmdliner

(* ---------------- JSON rendering helpers ---------------- *)

let quote k = Obs.Json.render (Obs.Json.S k)

let summary_fields s =
  let module S = Metrics.Summary in
  if S.count s = 0 then [ ("count", Obs.Json.I 0) ]
  else
    [
      ("count", Obs.Json.I (S.count s));
      ("mean", Obs.Json.F (S.mean s));
      ("stddev", Obs.Json.F (S.stddev s));
      ("min", Obs.Json.F (S.min s));
      ("max", Obs.Json.F (S.max s));
      ("p50", Obs.Json.F (S.percentile s 50.));
      ("p95", Obs.Json.F (S.percentile s 95.));
      ("p99", Obs.Json.F (S.percentile s 99.));
      ("p999", Obs.Json.F (S.percentile s 99.9));
    ]

let hist_fields h =
  let module H = Metrics.Hist in
  if H.count h = 0 then [ ("count", Obs.Json.I 0) ]
  else
    [
      ("count", Obs.Json.I (H.count h));
      ("mean", Obs.Json.F (H.mean h));
      ("min", Obs.Json.F (H.min h));
      ("max", Obs.Json.F (H.max h));
      ("p50", Obs.Json.F (H.percentile h 50.));
      ("p95", Obs.Json.F (H.percentile h 95.));
      ("p99", Obs.Json.F (H.percentile h 99.));
      ("p999", Obs.Json.F (H.percentile h 99.9));
      ("rel_error", Obs.Json.F (H.relative_error h));
    ]

(* One nesting level: {"a": {...}, "b": {...}}. *)
let nested entries =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, fields) -> quote k ^ ": " ^ Obs.Json.obj fields) entries)
  ^ "}"

(* ---------------- workload ---------------- *)

let profile_conv =
  let parse = function
    | "web" -> Ok Workload.Gen.web_server
    | "oltp" -> Ok Workload.Gen.oltp
    | "backup" -> Ok Workload.Gen.backup
    | "ingest" -> Ok Workload.Gen.ingest
    | s -> Error (`Msg (Printf.sprintf "unknown profile %S" s))
  in
  let print fmt (spec : Workload.Gen.spec) =
    Format.fprintf fmt "profile(read=%.2f)" spec.Workload.Gen.read_fraction
  in
  Arg.conv (parse, print)

let write_stats_json path ~meta ~metrics ~obs_stats ~client_latency ~elapsed
    ~ops_done ~aborts =
  Obs.Stats.materialize obs_stats metrics;
  let counters =
    List.map
      (fun name -> (name, Obs.Json.F (Metrics.Registry.value metrics name)))
      (Metrics.Registry.names metrics)
  in
  let summaries =
    List.filter_map
      (fun name ->
        Option.map
          (fun s -> (name, summary_fields s))
          (Metrics.Registry.summary_opt metrics name))
      (Metrics.Registry.summary_names metrics)
  in
  let elided = Obs.Stats.elided_by_kind obs_stats in
  let breakdown =
    List.map
      (fun (kind, count, phases) ->
        ( kind,
          ("count", Obs.Json.I count)
          :: List.map
               (fun (p, mean) -> (Obs.phase_name p, Obs.Json.F mean))
               phases
          @ List.map
              (fun (p, c) -> ("elided_" ^ Obs.phase_name p, Obs.Json.I c))
              (Option.value ~default:[] (List.assoc_opt kind elided)) ))
      (Obs.Stats.phase_breakdown obs_stats)
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{%s: %s,\n %s: %s,\n %s: %s,\n %s: %s,\n %s: %s,\n %s: %s,\n\
    \ %s: %s,\n %s: %s,\n %s: %s}\n"
    (quote "meta") (Obs.Json.obj meta)
    (quote "elapsed")
    (Obs.Json.render (Obs.Json.F elapsed))
    (quote "ops_done")
    (Obs.Json.render (Obs.Json.I ops_done))
    (quote "aborts")
    (Obs.Json.render (Obs.Json.I aborts))
    (quote "unfinished")
    (Obs.Json.render (Obs.Json.I (Obs.Stats.unfinished obs_stats)))
    (quote "client_latency")
    (Obs.Json.obj (summary_fields client_latency))
    (quote "counters") (Obs.Json.obj counters)
    (quote "summaries") (nested summaries)
    (quote "breakdown") (nested breakdown);
  close_out oc

let run_workload runtime_name domains m n bricks stripes block_size clients
    ops profile drop seed optimized pipeline_window no_ts_cache no_coalesce
    trace trace_out trace_chrome stats_json =
  if m < 1 || n <= m then `Error (false, "need 1 <= m < n")
  else if pipeline_window < 1 then `Error (false, "need pipeline-window >= 1")
  else if runtime_name <> "sim" && runtime_name <> "mc" then
    `Error (false, "--runtime must be sim or mc")
  else if runtime_name = "mc" && drop > 0. then
    `Error (false, "--drop needs the simulated network (--runtime sim)")
  else if domains < 1 then `Error (false, "need domains >= 1")
  else begin
    let volume =
      if runtime_name = "sim" then
        Fab.Volume.create ~m ~n
          ?bricks:(if bricks = 0 then None else Some bricks)
          ~stripes ~block_size ~seed ~optimized_modify:optimized
          ~ts_cache:(not no_ts_cache) ~coalesce:(not no_coalesce)
          ~pipeline_window
          ~net_config:{ Simnet.Net.default_config with drop }
          ()
      else begin
        (* Multicore backend: every concurrent client gets its own
           coordinator brick so logical (time, pid) timestamps stay
           unique; message coalescing is a same-instant notion and is
           left off under wall-clock time. *)
        let nbricks = if bricks = 0 then max n clients else bricks in
        let layout_kind =
          if nbricks = n then Fab.Layout.Fixed else Fab.Layout.Rotating
        in
        let cluster =
          Core.Cluster.create_mc ~domains ~bricks:nbricks
            ~layout:(Fab.Layout.make layout_kind ~bricks:nbricks ~n)
            ~block_size ~optimized_modify:optimized
            ~ts_cache:(not no_ts_cache) ~m ~n ()
        in
        Fab.Volume.of_cluster ~cluster ~m ~stripes ~block_size ~op_retries:3
          ~pipeline_window ~stripe_offset:0 ()
      end
    in
    let cluster = Fab.Volume.cluster volume in
    let nbricks = Array.length cluster.Core.Cluster.bricks in
    let obs = cluster.Core.Cluster.obs in
    let meta =
      Obs.Meta.standard ~runtime:runtime_name ~domains
        ~extra:
          [
            ("tool", Obs.Json.S "fab_sim workload");
            ("seed", Obs.Json.I seed);
            ("m", Obs.Json.I m);
            ("n", Obs.Json.I n);
            ("bricks", Obs.Json.I nbricks);
            ("stripes", Obs.Json.I stripes);
            ("block_size", Obs.Json.I block_size);
            ("clients", Obs.Json.I clients);
            ("ops", Obs.Json.I ops);
            ("drop", Obs.Json.F drop);
            ("pipeline_window", Obs.Json.I pipeline_window);
            ("ts_cache", Obs.Json.B (not no_ts_cache));
            ("coalesce", Obs.Json.B (not no_coalesce));
            ( "gf_kernel",
              Obs.Json.S (Erasure.Codec.kernel_name (Fab.Volume.codec volume))
            );
          ]
        ()
    in
    let channels = ref [] in
    let file_sink path make =
      let oc = open_out path in
      channels := oc :: !channels;
      Obs.add_sink obs (make oc)
    in
    if trace then begin
      Core.Trace.enable_stderr ();
      Obs.add_sink obs (Core.Trace.sink ())
    end;
    Option.iter (fun path -> file_sink path (Obs.jsonl ~meta)) trace_out;
    Option.iter (fun path -> file_sink path Obs.chrome) trace_chrome;
    let obs_stats = Obs.Stats.create () in
    if stats_json <> None then Obs.add_sink obs (Obs.Stats.sink obs_stats);
    Printf.printf
      "volume: %d-of-%d code, %d bricks, %d stripes, %dB blocks, drop=%.2f\n"
      m n nbricks stripes block_size drop;
    let stats = Array.init clients (fun _ -> Workload.Client.fresh_stats ()) in
    let started = Runtime.now cluster.Core.Cluster.runtime in
    for c = 0 to clients - 1 do
      let gen =
        Workload.Gen.make profile
          ~capacity_blocks:(Fab.Volume.capacity_blocks volume)
          ~rng:(Random.State.make [| seed; c |])
      in
      Workload.Client.spawn volume ~coord:(c mod nbricks) ~gen ~ops
        ~payload_tag:(Char.chr (97 + (c mod 26)))
        stats.(c)
    done;
    Fab.Volume.run ~horizon:10_000_000. volume;
    let elapsed = Runtime.now cluster.Core.Cluster.runtime -. started in
    let metrics = cluster.Core.Cluster.metrics in
    let total field = Array.fold_left (fun acc s -> acc + field s) 0 stats in
    let ops_done = total (fun s -> s.Workload.Client.ops) in
    let aborts = total (fun s -> s.Workload.Client.aborts) in
    if Core.Cluster.is_mc cluster then
      Printf.printf "clients: %d x %d ops, elapsed %.3f s (%d domains)\n"
        clients ops elapsed domains
    else
      Printf.printf "clients: %d x %d ops, elapsed %.0f delta\n" clients ops
        elapsed;
    Printf.printf "  completed ops : %d (%d reads, %d writes, %d aborted)\n"
      ops_done
      (total (fun s -> s.Workload.Client.reads))
      (total (fun s -> s.Workload.Client.writes))
      aborts;
    if Core.Cluster.is_mc cluster then
      Printf.printf "  throughput    : %.0f ops / sec (wall clock)\n"
        (float_of_int ops_done /. elapsed)
    else
      Printf.printf "  throughput    : %.2f ops / kdelta\n"
        (float_of_int ops_done /. elapsed *. 1000.);
    Array.iteri
      (fun i s ->
        Printf.printf "  client %d      : %s\n" i
          (Format.asprintf "%a" Metrics.Summary.pp s.Workload.Client.latency))
      stats;
    let client_latency =
      Array.fold_left
        (fun acc s -> Metrics.Summary.merge acc s.Workload.Client.latency)
        (Metrics.Summary.create ())
        stats
    in
    Printf.printf "  all clients   : %s\n"
      (Format.asprintf "%a" Metrics.Summary.pp client_latency);
    Printf.printf "  network       : %.0f messages, %.1f KiB payload\n"
      (Metrics.Registry.value metrics "net.msgs")
      (Metrics.Registry.value metrics "net.bytes" /. 1024.);
    Printf.printf "  disk          : %.0f reads, %.0f writes, %.0f NVRAM writes\n"
      (Metrics.Registry.value metrics "disk.reads")
      (Metrics.Registry.value metrics "disk.writes")
      (Metrics.Registry.value metrics "nvram.writes");
    (* Codec counters join the registry so --stats-json records the
       decode-plan cache behavior and the selected GF(2^8) kernel
       alongside the network and disk counters. *)
    let codec = Fab.Volume.codec volume in
    let plan_hits, plan_misses, plan_entries =
      Erasure.Codec.plan_cache_stats codec
    in
    Metrics.Registry.incr ~by:(float_of_int plan_hits) metrics
      "codec.plan_hits";
    Metrics.Registry.incr ~by:(float_of_int plan_misses) metrics
      "codec.plan_misses";
    Metrics.Registry.incr ~by:(float_of_int plan_entries) metrics
      "codec.plan_entries";
    List.iter
      (fun (kname, count) ->
        Metrics.Registry.incr ~by:(float_of_int count) metrics
          ("codec.kernel." ^ kname))
      (Gf256.Kernel.selection_counts ());
    Printf.printf "  codec         : %s kernel, plan cache %d hits / %d misses\n"
      (Erasure.Codec.kernel_name codec) plan_hits plan_misses;
    Obs.close obs;
    List.iter close_out !channels;
    Option.iter
      (fun path ->
        write_stats_json path ~meta ~metrics ~obs_stats ~client_latency
          ~elapsed ~ops_done ~aborts)
      stats_json;
    Core.Cluster.shutdown cluster;
    `Ok ()
  end

let workload_cmd =
  let runtime_name =
    Arg.(
      value
      & opt string "sim"
      & info [ "runtime" ] ~docv:"BACKEND"
          ~doc:
            "Execution backend: $(b,sim) (deterministic discrete-event \
             simulator, virtual time) or $(b,mc) (OCaml 5 multicore \
             domains, wall-clock time).")
  in
  let domains =
    Arg.(
      value
      & opt int 1
      & info [ "domains" ]
          ~doc:"Worker domains for $(b,--runtime mc); ignored under sim.")
  in
  let m = Arg.(value & opt int 5 & info [ "m"; "data-blocks" ] ~doc:"Data blocks per stripe.") in
  let n = Arg.(value & opt int 8 & info [ "n"; "total-blocks" ] ~doc:"Total blocks per stripe.") in
  let bricks =
    Arg.(value & opt int 0 & info [ "bricks" ] ~doc:"Bricks (default: n).")
  in
  let stripes =
    Arg.(value & opt int 64 & info [ "stripes" ] ~doc:"Stripes in the volume.")
  in
  let block_size =
    Arg.(value & opt int 1024 & info [ "block-size" ] ~doc:"Block size in bytes.")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Concurrent clients.")
  in
  let ops =
    Arg.(value & opt int 200 & info [ "ops" ] ~doc:"Operations per client.")
  in
  let profile =
    Arg.(
      value
      & opt profile_conv Workload.Gen.web_server
      & info [ "profile" ] ~doc:"Workload profile: web, oltp, backup, ingest.")
  in
  let drop =
    Arg.(value & opt float 0. & info [ "drop" ] ~doc:"Message drop probability.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let optimized =
    Arg.(value & flag & info [ "optimized-modify" ]
           ~doc:"Use the section 5.2 bandwidth-optimized block writes.")
  in
  let pipeline_window =
    Arg.(value & opt int 8 & info [ "pipeline-window" ]
           ~doc:"Max per-stripe operations of one request in flight \
                 (1 = serial extent order).")
  in
  let no_ts_cache =
    Arg.(value & flag & info [ "no-ts-cache" ]
           ~doc:"Disable coordinator timestamp caching (order-round \
                 elision on warm sequential writes).")
  in
  let no_coalesce =
    Arg.(value & flag & info [ "no-coalesce" ]
           ~doc:"Disable per-destination message coalescing.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Print a protocol trace (every event) to stderr.")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the structured event trace as JSON-lines to $(docv) \
                 (replay it with $(b,fab_sim explain)).")
  in
  let trace_chrome =
    Arg.(value & opt (some string) None & info [ "trace-chrome" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace_event file to $(docv); load it in \
                 Perfetto or chrome://tracing.")
  in
  let stats_json =
    Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE"
           ~doc:"Write machine-readable run statistics (counters, latency \
                 summaries, per-phase breakdown) to $(docv).")
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Run a synthetic workload on a simulated volume")
    Term.(
      ret
        (const run_workload $ runtime_name $ domains $ m $ n $ bricks
        $ stripes $ block_size $ clients $ ops $ profile $ drop $ seed
        $ optimized $ pipeline_window $ no_ts_cache $ no_coalesce $ trace
        $ trace_out $ trace_chrome $ stats_json))

(* ---------------- explain ---------------- *)

let read_lines file =
  let ic = open_in file in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let fmt_cell = function None -> "      -" | Some v -> Printf.sprintf "%7.1f" v

let print_breakdown obs_stats =
  let phases = Obs.all_phases in
  Printf.printf "\nper-op-kind phase breakdown (time in delta units):\n";
  Printf.printf "  %-13s %6s %5s %5s %5s %8s %8s" "kind" "count" "ok" "rty"
    "abt" "mean" "p95";
  List.iter (fun p -> Printf.printf " %9s" (Obs.phase_name p)) phases;
  Printf.printf "\n";
  let completed = Obs.Stats.completed obs_stats in
  let by_kind = Obs.Stats.by_kind obs_stats in
  let outcome_count kind o =
    List.length
      (List.filter
         (fun (st : Obs.Stats.op_stat) ->
           st.Obs.Stats.op_kind = kind && st.Obs.Stats.outcome = Some o)
         completed)
  in
  List.iter
    (fun (kind, count, phase_means) ->
      let lat = List.assoc_opt kind by_kind in
      Printf.printf "  %-13s %6d %5d %5d %5d %8s %8s" kind count
        (outcome_count kind Obs.Ok)
        (outcome_count kind Obs.Retry)
        (outcome_count kind Obs.Abort)
        (match lat with
        | Some s when Metrics.Summary.count s > 0 ->
            Printf.sprintf "%.1f" (Metrics.Summary.mean s)
        | _ -> "-")
        (match lat with
        | Some s when Metrics.Summary.count s > 0 ->
            Printf.sprintf "%.1f" (Metrics.Summary.percentile s 95.)
        | _ -> "-");
      List.iter
        (fun p ->
          Printf.printf " %9s" (fmt_cell (List.assoc_opt p phase_means)))
        phases;
      Printf.printf "\n")
    (Obs.Stats.phase_breakdown obs_stats);
  match Obs.Stats.elided_by_kind obs_stats with
  | [] -> ()
  | elided ->
      Printf.printf "\nelided phases (order rounds skipped via timestamp \
                     cache):\n";
      List.iter
        (fun (kind, counts) ->
          Printf.printf "  %-13s %s\n" kind
            (String.concat " "
               (List.map
                  (fun (p, c) -> Printf.sprintf "%s=%d" (Obs.phase_name p) c)
                  counts)))
        elided

let print_per_op obs_stats =
  Printf.printf "\nper-operation spans:\n";
  Printf.printf "  %5s %9s %-13s %5s %-6s %8s  %s\n" "op" "start" "kind" "s"
    "out" "latency" "phases";
  List.iter
    (fun (st : Obs.Stats.op_stat) ->
      Printf.printf "  %5d %9.1f %-13s %5d %-6s %8.1f  %s\n" st.Obs.Stats.op
        st.Obs.Stats.t_start st.Obs.Stats.op_kind st.Obs.Stats.stripe
        (match st.Obs.Stats.outcome with
        | Some o -> Obs.outcome_name o
        | None -> "?")
        (Obs.Stats.latency st)
        (String.concat " "
           (List.map
              (fun (p, d) -> Printf.sprintf "%s=%.1f" (Obs.phase_name p) d)
              (List.rev st.Obs.Stats.phases))))
    (Obs.Stats.completed obs_stats)

let run_explain file per_op validate =
  match read_lines file with
  | exception Sys_error msg -> `Error (false, msg)
  | lines ->
      let events = ref [] and metas = ref [] and errors = ref [] in
      List.iteri
        (fun i line ->
          if String.trim line <> "" then
            match Obs.of_json line with
            | `Event ev -> events := ev :: !events
            | `Meta md -> metas := md :: !metas
            | `Error e ->
                errors := Printf.sprintf "line %d: %s" (i + 1) e :: !errors)
        lines;
      let events = List.rev !events in
      List.iter
        (fun md ->
          Printf.printf "run: %s\n"
            (String.concat " "
               (List.filter_map
                  (fun (k, v) ->
                    if k = "ev" then None
                    else Some (k ^ "=" ^ Obs.Json.render v))
                  md)))
        (List.rev !metas);
      let span_errors = if validate then Obs.Check.well_formed events else [] in
      let schema_errors = List.rev !errors in
      let obs_stats = Obs.Stats.create () in
      List.iter (Obs.Stats.feed obs_stats) events;
      Printf.printf "%d events, %d completed ops, %d unfinished\n"
        (List.length events)
        (List.length (Obs.Stats.completed obs_stats))
        (Obs.Stats.unfinished obs_stats);
      let totals =
        List.fold_left
          (fun (msgs, bytes, drops, timeouts, dr, dw)
               (st : Obs.Stats.op_stat) ->
            ( msgs + st.Obs.Stats.msgs,
              bytes + st.Obs.Stats.bytes,
              drops + st.Obs.Stats.drops,
              timeouts + st.Obs.Stats.timeouts,
              dr + st.Obs.Stats.disk_reads,
              dw + st.Obs.Stats.disk_writes ))
          (0, 0, 0, 0, 0, 0)
          (Obs.Stats.completed obs_stats)
      in
      let msgs, bytes, drops, timeouts, dr, dw = totals in
      Printf.printf
        "attributed to ops: %d msgs, %d payload bytes, %d drops, %d \
         timeouts, %d disk reads, %d disk writes\n"
        msgs bytes drops timeouts dr dw;
      print_breakdown obs_stats;
      (match Obs.Stats.queue_depths obs_stats with
      | [] -> ()
      | qs ->
          Printf.printf "\nqueue depths (samples at enqueue):\n";
          List.iter
            (fun (who, s) ->
              Printf.printf "  %-6s %s\n" who
                (Format.asprintf "%a" Metrics.Summary.pp s))
            qs);
      if per_op then print_per_op obs_stats;
      if validate then begin
        List.iter (Printf.eprintf "schema error: %s\n") schema_errors;
        List.iter (Printf.eprintf "span error: %s\n") span_errors;
        if schema_errors <> [] || span_errors <> [] then begin
          (* Exit 1, not via [`Error]: cmdliner reserves 124 for CLI
             usage errors, and a bad trace is a checked input failure
             scripts need to distinguish (documented exit code 1). *)
          Printf.eprintf "fab_sim: trace validation failed (%d schema, %d span)\n"
            (List.length schema_errors)
            (List.length span_errors);
          exit 1
        end
        else begin
          Printf.printf "\nvalidation: OK (schema + span well-formedness)\n";
          `Ok ()
        end
      end
      else `Ok ()

let explain_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE.jsonl"
           ~doc:"JSON-lines trace written by $(b,workload --trace-out).")
  in
  let per_op =
    Arg.(value & flag & info [ "per-op" ]
           ~doc:"Also print one line per operation span.")
  in
  let validate =
    Arg.(value & flag & info [ "validate" ]
           ~doc:"Check the JSONL schema and span well-formedness; exit \
                 non-zero on any violation.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Replay a structured trace into per-op phase-latency breakdowns")
    Term.(ret (const run_explain $ file $ per_op $ validate))

(* ---------------- report ---------------- *)

(* Nested JSON for BENCH_workload.json (Obs.Json is flat by design —
   the event schema — so the report builds its own small tree). *)
module Jt = struct
  type t = O of (string * t) list | A of t list | L of Obs.Json.v

  let rec render ?(level = 0) = function
    | L v -> Obs.Json.render v
    | A items -> "[" ^ String.concat ", " (List.map (render ~level) items) ^ "]"
    | O [] -> "{}"
    | O fields ->
        let pad = String.make (2 * (level + 1)) ' ' in
        "{\n"
        ^ String.concat ",\n"
            (List.map
               (fun (k, v) -> pad ^ quote k ^ ": " ^ render ~level:(level + 1) v)
               fields)
        ^ "\n" ^ String.make (2 * level) ' ' ^ "}"
end

(* "rep-K" (K-way replication = 1-of-K) or "ec-M-N" (M-of-N code). *)
let parse_geometry s =
  let fail () =
    Error (`Msg (Printf.sprintf "bad geometry %S (want rep-K or ec-M-N)" s))
  in
  match String.split_on_char '-' s with
  | [ "rep"; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 2 -> Ok (s, 1, k)
      | _ -> fail ())
  | [ "ec"; m; n ] -> (
      match (int_of_string_opt m, int_of_string_opt n) with
      | Some m, Some n when 1 <= m && m < n -> Ok (s, m, n)
      | _ -> fail ())
  | _ -> fail ()

let geometry_conv =
  Arg.conv
    ( parse_geometry,
      fun fmt (name, _, _) -> Format.pp_print_string fmt name )

let profile_of_name = function
  | "web" -> Ok Workload.Gen.web_server
  | "oltp" -> Ok Workload.Gen.oltp
  | "backup" -> Ok Workload.Gen.backup
  | "ingest" -> Ok Workload.Gen.ingest
  | s -> Error (Printf.sprintf "unknown profile %S" s)

let slo_conv =
  Arg.conv
    ( (fun s ->
        match Obs.Slo.parse s with
        | Result.Ok o -> Ok o
        | Result.Error e -> Error (`Msg e)),
      fun fmt o -> Format.pp_print_string fmt (Obs.Slo.name o) )

(* A small fault plan scaled to the deployment and window width: crash
   the last brick for two windows, then a loss burst for one. *)
let report_fault_plan ~n ~window =
  let ev at fault = { Chaos.Plan.at; fault } in
  Chaos.Plan.make ~name:"report-faults" ~horizon:(8. *. window)
    [
      ev (2. *. window) (Chaos.Plan.Crash (n - 1));
      ev (4. *. window) (Chaos.Plan.Recover (n - 1));
      ev (5. *. window) (Chaos.Plan.Drop 0.2);
      ev (6. *. window) (Chaos.Plan.Drop 0.);
    ]

(* Unicode eighth-blocks; [None] (empty window) renders as a dot. *)
let spark values =
  let bars = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]
  in
  let top =
    List.fold_left
      (fun acc -> function Some v -> Float.max acc v | None -> acc)
      0. values
  in
  String.concat ""
    (List.map
       (function
         | None -> "\xc2\xb7"
         | Some v ->
             let i =
               if top <= 0. then 0
               else
                 min 7 (int_of_float (Float.round (v /. top *. 7.)))
             in
             bars.(max 0 i))
       values)

type cell = {
  c_name : string;  (* "<geometry>/<profile>" *)
  c_geom : string;
  c_profile : string;
  c_m : int;
  c_n : int;
  c_elapsed : float;
  c_ops : int;
  c_ok : int;
  c_aborts : int;
  c_unavail : int;
  c_msgs : float;
  c_net_blocks : float;
  c_disk_reads : float;
  c_disk_writes : float;
  c_latency : Metrics.Summary.t;  (* merged client latency *)
  c_hist : Metrics.Hist.t;  (* merged client latency histogram *)
  c_kinds : (string * Metrics.Summary.t * Metrics.Hist.t) list;
  c_timeline : Obs.Timeline.t;
  c_slos : Obs.Slo.report list;
  c_evicted : int;
}

let run_cell ~geom ~m ~n ~stripes ~block_size ~clients ~ops ~profile_name
    ~profile ~seed ~window ~faults ~deadline ~slos =
  let volume =
    Fab.Volume.create ~m ~n ~stripes ~block_size ~seed
      ?deadline:(if deadline > 0. then Some deadline else None)
      ()
  in
  let cluster = Fab.Volume.cluster volume in
  let nbricks = Array.length cluster.Core.Cluster.bricks in
  let obs = cluster.Core.Cluster.obs in
  let timeline =
    Obs.Timeline.create ~classify:Chaos.Plan.overlay_of_label ~width:window ()
  in
  Obs.add_sink obs (Obs.Timeline.sink timeline);
  let obs_stats = Obs.Stats.create ~retain:4096 () in
  Obs.add_sink obs (Obs.Stats.sink obs_stats);
  let nemesis =
    if faults then Some (Chaos.Nemesis.install (report_fault_plan ~n ~window) cluster)
    else None
  in
  let stats = Array.init clients (fun _ -> Workload.Client.fresh_stats ()) in
  let started = Dessim.Engine.now cluster.Core.Cluster.engine in
  (* The fault plan crashes brick n-1; keep coordinators off it, as a
     crashed coordinator strands its client's in-flight op (the
     workload client has no coordinator failover). *)
  let coord_slots = if faults then max 1 (nbricks - 1) else nbricks in
  for c = 0 to clients - 1 do
    let gen =
      Workload.Gen.make profile
        ~capacity_blocks:(Fab.Volume.capacity_blocks volume)
        ~rng:(Random.State.make [| seed; c |])
    in
    Workload.Client.spawn volume ~coord:(c mod coord_slots) ~gen ~ops
      ~payload_tag:(Char.chr (97 + (c mod 26)))
      stats.(c)
  done;
  Fab.Volume.run ~horizon:10_000_000. volume;
  Option.iter Chaos.Nemesis.restore nemesis;
  Obs.close obs;
  let elapsed = Dessim.Engine.now cluster.Core.Cluster.engine -. started in
  let metrics = cluster.Core.Cluster.metrics in
  let total field = Array.fold_left (fun acc s -> acc + field s) 0 stats in
  let ops_done = total (fun s -> s.Workload.Client.ops) in
  let aborts = total (fun s -> s.Workload.Client.aborts) in
  let unavail = total (fun s -> s.Workload.Client.unavailable) in
  let per_op v = if ops_done = 0 then 0. else v /. float_of_int ops_done in
  let latency =
    Array.fold_left
      (fun acc s -> Metrics.Summary.merge acc s.Workload.Client.latency)
      (Metrics.Summary.create ())
      stats
  in
  let hist =
    Array.fold_left
      (fun acc s -> Metrics.Hist.merge acc s.Workload.Client.latency_hist)
      (Metrics.Hist.create ())
      stats
  in
  let kinds =
    List.map
      (fun (k, sum) ->
        let h =
          match List.assoc_opt k (Obs.Stats.hist_by_kind obs_stats) with
          | Some h -> h
          | None -> Metrics.Hist.create ()
        in
        (k, sum, h))
      (Obs.Stats.by_kind obs_stats)
  in
  {
    c_name = geom ^ "/" ^ profile_name;
    c_geom = geom;
    c_profile = profile_name;
    c_m = m;
    c_n = n;
    c_elapsed = elapsed;
    c_ops = ops_done;
    c_ok = ops_done - aborts - unavail;
    c_aborts = aborts;
    c_unavail = unavail;
    c_msgs = per_op (Metrics.Registry.value metrics "net.msgs");
    c_net_blocks =
      per_op (Metrics.Registry.value metrics "net.bytes")
      /. float_of_int block_size;
    c_disk_reads = per_op (Metrics.Registry.value metrics "disk.reads");
    c_disk_writes = per_op (Metrics.Registry.value metrics "disk.writes");
    c_latency = latency;
    c_hist = hist;
    c_kinds = kinds;
    c_timeline = timeline;
    c_slos = List.map (Obs.Slo.evaluate timeline) slos;
    c_evicted = Obs.Stats.evicted obs_stats;
  }

let cell_windows cell =
  let ts = Obs.Timeline.series cell.c_timeline in
  match Metrics.Timeseries.span ts with
  | None -> []
  | Some (w0, w1) ->
      List.init (w1 - w0 + 1) (fun i ->
          let w = w0 + i in
          let h = Metrics.Timeseries.hist ts "lat.all" w in
          let pc p =
            Option.map (fun h -> Metrics.Hist.percentile h p) h
          in
          ( w,
            Metrics.Timeseries.window_start ts w,
            (match h with Some h -> Metrics.Hist.count h | None -> 0),
            pc 50.,
            pc 99.,
            pc 99.9,
            Metrics.Timeseries.counter ts "out.ok" w,
            Metrics.Timeseries.counter ts "retransmits" w,
            Obs.Timeline.faults_in cell.c_timeline w ))

let cell_json cell =
  let slo_fields (r : Obs.Slo.report) =
    ( Obs.Slo.name r.Obs.Slo.objective,
      Jt.O
        [
          ("total", Jt.L (Obs.Json.I r.Obs.Slo.total));
          ("bad", Jt.L (Obs.Json.I r.Obs.Slo.bad));
          ("budget_frac", Jt.L (Obs.Json.F r.Obs.Slo.budget_frac));
          ("burn", Jt.L (Obs.Json.F r.Obs.Slo.burn));
          ("compliant", Jt.L (Obs.Json.B r.Obs.Slo.compliant));
        ] )
  in
  let windows =
    List.map
      (fun (w, t0, n, p50, p99, p999, goodput, rtx, faults) ->
        let pc name v fields =
          match v with Some v -> (name, Jt.L (Obs.Json.F v)) :: fields | None -> fields
        in
        Jt.O
          (("w", Jt.L (Obs.Json.I w))
           :: ("t0", Jt.L (Obs.Json.F t0))
           :: ("n", Jt.L (Obs.Json.I n))
           :: (pc "p50" p50 @@ pc "p99" p99 @@ pc "p999" p999
                 [
                   ("goodput", Jt.L (Obs.Json.F goodput));
                   ("retransmits", Jt.L (Obs.Json.F rtx));
                   ("faults", Jt.L (Obs.Json.S (String.concat "," faults)));
                 ])))
      (cell_windows cell)
  in
  ( cell.c_name,
    Jt.O
      [
        ("geometry", Jt.L (Obs.Json.S cell.c_geom));
        ("profile", Jt.L (Obs.Json.S cell.c_profile));
        ("m", Jt.L (Obs.Json.I cell.c_m));
        ("n", Jt.L (Obs.Json.I cell.c_n));
        ("elapsed", Jt.L (Obs.Json.F cell.c_elapsed));
        ("ops", Jt.L (Obs.Json.I cell.c_ops));
        ("ok", Jt.L (Obs.Json.I cell.c_ok));
        ("aborts", Jt.L (Obs.Json.I cell.c_aborts));
        ("unavailable", Jt.L (Obs.Json.I cell.c_unavail));
        ( "throughput",
          Jt.L
            (Obs.Json.F
               (if cell.c_elapsed <= 0. then 0.
                else float_of_int cell.c_ops /. cell.c_elapsed *. 1000.)) );
        ( "cost_per_op",
          Jt.O
            [
              ("msgs", Jt.L (Obs.Json.F cell.c_msgs));
              ("net_blocks", Jt.L (Obs.Json.F cell.c_net_blocks));
              ("disk_reads", Jt.L (Obs.Json.F cell.c_disk_reads));
              ("disk_writes", Jt.L (Obs.Json.F cell.c_disk_writes));
            ] );
        ("latency", Jt.O (List.map (fun (k, v) -> (k, Jt.L v)) (summary_fields cell.c_latency)));
        ("latency_hist", Jt.O (List.map (fun (k, v) -> (k, Jt.L v)) (hist_fields cell.c_hist)));
        ( "kinds",
          Jt.O
            (List.map
               (fun (k, sum, h) ->
                 ( k,
                   Jt.O
                     (List.map (fun (k, v) -> (k, Jt.L v)) (summary_fields sum)
                     @ [ ("hist", Jt.O (List.map (fun (k, v) -> (k, Jt.L v)) (hist_fields h))) ]) ))
               cell.c_kinds) );
        ("slo", Jt.O (List.map slo_fields cell.c_slos));
        ("evicted", Jt.L (Obs.Json.I cell.c_evicted));
        ("windows", Jt.A windows);
      ] )

let fnum v = Printf.sprintf "%.2f" v
let fpct num den = if den = 0 then "0.0%" else Printf.sprintf "%.1f%%" (100. *. float_of_int num /. float_of_int den)

let write_report_md path ~meta ~window ~slos cells =
  let buf = Buffer.create 8192 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# FAB workload report";
  line "";
  line "%s"
    (String.concat "  \n"
       (List.filter_map
          (fun (k, v) ->
            if k = "ev" then None
            else Some (Printf.sprintf "`%s=%s`" k (Obs.Json.render v)))
          meta));
  line "";
  line "Latency in delta units; window width %g delta of simulated time." window;
  line "";
  line "## Geometry matrix";
  line "";
  line "| cell | ops | ok | abort | unavail | ops/kdelta | mean | p50 | p99 | p99.9 | msgs/op | net blk/op | disk rd/op | disk wr/op |";
  line "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|";
  List.iter
    (fun c ->
      let h = c.c_hist in
      let pc p =
        if Metrics.Hist.count h = 0 then "-"
        else fnum (Metrics.Hist.percentile h p)
      in
      line "| %s | %d | %s | %s | %s | %s | %s | %s | %s | %s | %s | %s | %s | %s |"
        c.c_name c.c_ops (fpct c.c_ok c.c_ops) (fpct c.c_aborts c.c_ops)
        (fpct c.c_unavail c.c_ops)
        (if c.c_elapsed <= 0. then "-"
         else fnum (float_of_int c.c_ops /. c.c_elapsed *. 1000.))
        (if Metrics.Summary.count c.c_latency = 0 then "-"
         else fnum (Metrics.Summary.mean c.c_latency))
        (pc 50.) (pc 99.) (pc 99.9) (fnum c.c_msgs) (fnum c.c_net_blocks)
        (fnum c.c_disk_reads) (fnum c.c_disk_writes))
    cells;
  line "";
  line "Cost columns are measured per completed operation — the Table-1";
  line "currencies (messages, network bandwidth in block units, disk reads,";
  line "disk writes) of the paper.";
  line "";
  line "## SLO compliance";
  line "";
  (match slos with
  | [] -> line "_no objectives declared (pass `--slo`)_"
  | _ ->
      line "| cell | objective | governed | out of SLO | budget | burn | compliant |";
      line "|---|---|---|---|---|---|---|";
      List.iter
        (fun c ->
          List.iter
            (fun (r : Obs.Slo.report) ->
              line "| %s | %s | %d | %d | %s | %s | %s |" c.c_name
                (Obs.Slo.name r.Obs.Slo.objective)
                r.Obs.Slo.total r.Obs.Slo.bad
                (Printf.sprintf "%.2f%%" (100. *. r.Obs.Slo.budget_frac))
                (Printf.sprintf "%.0f%%" (100. *. r.Obs.Slo.burn))
                (if r.Obs.Slo.compliant then "yes" else "**NO**"))
            c.c_slos)
        cells;
      line "";
      line "Burn is the share of the error budget spent (>100%% = objective";
      line "violated). Windows overlapping chaos faults are flagged in the";
      line "per-cell tables below.");
  List.iter
    (fun c ->
      let ts = Obs.Timeline.series c.c_timeline in
      let windows = cell_windows c in
      line "";
      line "## %s" c.c_name;
      line "";
      let wids = List.map (fun (w, _, _, _, _, _, _, _, _) -> w) windows in
      let p_series p =
        List.map
          (fun w ->
            Option.map (fun h -> Metrics.Hist.percentile h p)
              (Metrics.Timeseries.hist ts "lat.all" w))
          wids
      in
      let c_series name =
        List.map (fun w -> Some (Metrics.Timeseries.counter ts name w)) wids
      in
      let h_series name p =
        List.map
          (fun w ->
            Option.map (fun h -> Metrics.Hist.percentile h p)
              (Metrics.Timeseries.hist ts name w))
          wids
      in
      line "| series | over %d windows |" (List.length wids);
      line "|---|---|";
      line "| lat p50 | %s |" (spark (p_series 50.));
      line "| lat p99 | %s |" (spark (p_series 99.));
      line "| lat p99.9 | %s |" (spark (p_series 99.9));
      line "| goodput (ok ops) | %s |" (spark (c_series "out.ok"));
      line "| retransmits | %s |" (spark (c_series "retransmits"));
      line "| in-flight p99 | %s |" (spark (h_series "inflight" 99.));
      let fault_row =
        String.concat ""
          (List.map
             (fun (_, _, _, _, _, _, _, _, faults) ->
               if faults = [] then "\xc2\xb7" else "\xc3\x97")
             windows)
      in
      line "| chaos faults | %s |" fault_row;
      (match Obs.Timeline.faults c.c_timeline with
      | [] -> ()
      | fs ->
          line "";
          line "Fault overlays: %s."
            (String.concat "; "
               (List.map
                  (fun (label, t0, t1) ->
                    if t0 = t1 then Printf.sprintf "%s at %g" label t0
                    else Printf.sprintf "%s during [%g, %g]" label t0 t1)
                  fs)));
      line "";
      let max_rows = 64 in
      let shown = List.filteri (fun i _ -> i < max_rows) windows in
      line "| w | t0 | n | p50 | p99 | p99.9 | goodput | rtx |%s faults |"
        (String.concat ""
           (List.map
              (fun (r : Obs.Slo.report) ->
                Printf.sprintf " %s |" (Obs.Slo.name r.Obs.Slo.objective))
              c.c_slos));
      line "|---|---|---|---|---|---|---|---|%s---|"
        (String.concat ""
           (List.map (fun _ -> "---|") c.c_slos));
      List.iter
        (fun (w, t0, n, p50, p99, p999, goodput, rtx, faults) ->
          let cellv = function None -> "-" | Some v -> fnum v in
          let slo_cells =
            String.concat ""
              (List.map
                 (fun (r : Obs.Slo.report) ->
                   match
                     List.find_opt
                       (fun (ws : Obs.Slo.window_stat) -> ws.Obs.Slo.window = w)
                       r.Obs.Slo.windows
                   with
                   | Some ws when not ws.Obs.Slo.w_compliant -> " **✗** |"
                   | Some _ -> " ✓ |"
                   | None -> " - |")
                 c.c_slos)
          in
          line "| %d | %g | %d | %s | %s | %s | %.0f | %.0f |%s %s |" w t0 n
            (cellv p50) (cellv p99) (cellv p999) goodput rtx slo_cells
            (String.concat "," faults))
        shown;
      if List.length windows > max_rows then
        line "| … | | | | | | | | %d more windows elided |"
          (List.length windows - max_rows))
    cells;
  line "";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

let run_report geometries profiles stripes block_size clients ops seed window
    slos faults deadline out md =
  if window <= 0. then `Error (false, "need --window > 0")
  else
    let geometries =
      if geometries = [] then
        [ ("rep-2", 1, 2); ("rep-3", 1, 3); ("ec-2-4", 2, 4) ]
      else geometries
    in
    let profiles = if profiles = [] then [ "web"; "oltp" ] else profiles in
    match
      List.find_map
        (fun p ->
          match profile_of_name p with Ok _ -> None | Error e -> Some e)
        profiles
    with
    | Some e -> `Error (false, e)
    | None ->
        let resolved =
          List.map
            (fun p ->
              match profile_of_name p with
              | Ok spec -> (p, spec)
              | Error _ -> assert false)
            profiles
        in
        let cells =
          List.concat_map
            (fun (geom, m, n) ->
              List.map
                (fun (profile_name, profile) ->
                  Printf.printf "report: running %s/%s (%d-of-%d, %d clients x %d ops)...\n%!"
                    geom profile_name m n clients ops;
                  run_cell ~geom ~m ~n ~stripes ~block_size ~clients ~ops
                    ~profile_name ~profile ~seed ~window ~faults ~deadline
                    ~slos)
                resolved)
            geometries
        in
        let meta =
          Obs.Meta.standard
            ~extra:
              [
                ("tool", Obs.Json.S "fab_sim report");
                ("seed", Obs.Json.I seed);
                ("stripes", Obs.Json.I stripes);
                ("block_size", Obs.Json.I block_size);
                ("clients", Obs.Json.I clients);
                ("ops", Obs.Json.I ops);
                ("window", Obs.Json.F window);
                ("faults", Obs.Json.B faults);
                ( "geometries",
                  Obs.Json.S
                    (String.concat ","
                       (List.map (fun (g, _, _) -> g) geometries)) );
                ("profiles", Obs.Json.S (String.concat "," profiles));
                ( "slos",
                  Obs.Json.S
                    (String.concat "; " (List.map Obs.Slo.name slos)) );
                ("gf_kernel", Obs.Json.S (Gf256.Kernel.name (Gf256.Kernel.default ())));
                ("simd_level", Obs.Json.I Gf256.Kernel.simd_level);
              ]
            ()
        in
        let doc =
          Jt.O
            [
              ("meta", Jt.O (List.map (fun (k, v) -> (k, Jt.L v)) meta));
              ("cells", Jt.O (List.map cell_json cells));
            ]
        in
        let oc = open_out out in
        output_string oc (Jt.render doc);
        output_char oc '\n';
        close_out oc;
        write_report_md md ~meta ~window ~slos cells;
        Printf.printf "report: wrote %s and %s (%d cells)\n" out md
          (List.length cells);
        `Ok ()

let report_cmd =
  let geometries =
    Arg.(value & opt_all geometry_conv []
         & info [ "geometry" ] ~docv:"GEOM"
             ~doc:"Geometry to run: rep-K (K-way replication) or ec-M-N \
                   (M-of-N erasure code). Repeatable; default: rep-2, \
                   rep-3, ec-2-4.")
  in
  let profiles =
    Arg.(value & opt_all string []
         & info [ "profile" ] ~docv:"NAME"
             ~doc:"Workload mix: web, oltp, backup, ingest. Repeatable; \
                   default: web, oltp.")
  in
  let stripes =
    Arg.(value & opt int 16 & info [ "stripes" ] ~doc:"Stripes per volume.")
  in
  let block_size =
    Arg.(value & opt int 512 & info [ "block-size" ] ~doc:"Block size in bytes.")
  in
  let clients =
    Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Concurrent clients.")
  in
  let ops =
    Arg.(value & opt int 150 & info [ "ops" ] ~doc:"Operations per client.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let window =
    Arg.(value & opt float 50. & info [ "window" ] ~docv:"DELTA"
           ~doc:"Time-series window width in delta units of simulated time.")
  in
  let slos =
    Arg.(value & opt_all slo_conv
           [
             Obs.Slo.Latency { kind = Some "read"; p = 99.; limit = 6. };
             Obs.Slo.Availability { min_pct = 99.9 };
           ]
         & info [ "slo" ] ~docv:"SLO"
             ~doc:"Objective, e.g. 'read p99 < 6' or 'availability >= \
                   99.9%'. Repeatable; replaces the defaults.")
  in
  let faults =
    Arg.(value & flag & info [ "faults" ]
           ~doc:"Inject a small chaos plan (a crash window and a loss \
                 burst, scaled to the geometry) into every cell.")
  in
  let deadline =
    Arg.(value & opt float 0. & info [ "deadline" ]
           ~doc:"Per-operation deadline in delta units (0 = none); give \
                 one when injecting faults so quorum loss fails fast \
                 instead of stalling.")
  in
  let out =
    Arg.(value & opt string "BENCH_workload.json" & info [ "out" ] ~docv:"FILE"
           ~doc:"Machine-readable report (diff two of these with \
                 scripts/bench_diff).")
  in
  let md =
    Arg.(value & opt string "REPORT_workload.md" & info [ "md" ] ~docv:"FILE"
           ~doc:"Auto-generated markdown report.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run a geometry matrix and emit BENCH_workload.json plus a \
             markdown SLO/time-series report")
    Term.(
      ret
        (const run_report $ geometries $ profiles $ stripes $ block_size
        $ clients $ ops $ seed $ window $ slos $ faults $ deadline $ out $ md))

(* ---------------- chaos ---------------- *)

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* A plan argument is a bundled plan name or a plan-file path. *)
let resolve_plan spec =
  match Chaos.Plan.builtin spec with
  | plan -> Ok plan
  | exception Not_found -> (
      if Sys.file_exists spec then
        match Chaos.Plan.of_string (read_file spec) with
        | Ok plan -> Ok plan
        | Error e -> Error (Printf.sprintf "%s: %s" spec e)
      else
        Error
          (Printf.sprintf
             "unknown plan %S (bundled: %s; or give a plan-file path)" spec
             (String.concat ", " (List.map fst Chaos.Plan.builtins))))

let run_chaos runtime domains time_scale plans random_plans seeds seed_base m
    n stripes clients ops deadline unsafe_skip_order shrink_out =
  if seeds < 1 then `Error (false, "need --seeds >= 1")
  else if runtime <> "sim" && runtime <> "mc" then
    `Error (false, "--runtime must be sim or mc")
  else
    let mc = runtime = "mc" in
    let specs =
      if plans = [] && random_plans = 0 then
        if mc then [ "mc-mixed" ] else List.map fst Chaos.Plan.builtins
      else plans
    in
    let resolved = List.map resolve_plan specs in
    match
      List.find_map (function Error e -> Some e | Ok _ -> None) resolved
    with
    | Some e -> `Error (false, e)
    | None ->
        let plans =
          List.filter_map (function Ok p -> Some p | Error _ -> None) resolved
        in
        let plans =
          plans
          @ List.init random_plans (fun i ->
                (* Derived from seed_base so a sweep is reproducible on
                   sim; horizon matches the bundled plans. *)
                let rng = Random.State.make [| seed_base; i; 0x9a7d |] in
                let p = Chaos.Plan.random ~rng ~bricks:n ~horizon:600. in
                { p with Chaos.Plan.name = Printf.sprintf "%s.%d" p.Chaos.Plan.name i })
        in
        let backend =
          if mc then Chaos.Harness.Mc { domains; time_scale }
          else Chaos.Harness.Sim
        in
        let harness_run ~seed plan =
          Chaos.Harness.run ~backend ~m ~n ~stripes ~clients
            ~ops_per_client:ops ~deadline ~unsafe_skip_order ~seed plan
        in
        let failure = ref None in
        let totals = ref (0, 0, 0, 0) in
        try
        List.iter
          (fun (plan : Chaos.Plan.t) ->
            let failures = ref 0 in
            let plan_totals = ref (0, 0, 0, 0) in
            for i = 0 to seeds - 1 do
              let seed = seed_base + i in
              let r = harness_run ~seed plan in
              let add (a, b, c, d) =
                ( a + r.Chaos.Harness.ok,
                  b + r.Chaos.Harness.aborted,
                  c + r.Chaos.Harness.unavailable,
                  d + r.Chaos.Harness.corrupt_reads )
              in
              plan_totals := add !plan_totals;
              totals := add !totals;
              if Chaos.Harness.failed r then begin
                incr failures;
                if !failure = None then failure := Some (plan, seed, r)
              end
            done;
            let ok, ab, un, cr = !plan_totals in
            Printf.printf
              "plan %-18s: %d seeds, %d ok, %d aborted, %d unavailable, %d \
               corrupt reads, %d FAILED\n"
              plan.Chaos.Plan.name seeds ok ab un cr !failures)
          plans;
        let ok, ab, un, cr = !totals in
        Printf.printf
          "total: %d ops ok, %d aborted, %d unavailable, %d corrupt reads\n"
          ok ab un cr;
        (match !failure with
        | None ->
            Printf.printf "chaos: all %d runs clean\n"
              (seeds * List.length plans);
            `Ok ()
        | Some (plan, seed, r) ->
            Printf.printf "\nFAILURE: plan %s seed %d\n  %s\n"
              plan.Chaos.Plan.name seed
              (Format.asprintf "%a" Chaos.Harness.pp_result r);
            if mc then begin
              (* Shrinking needs reproducibility, which mc gives up:
                 ddmin against a racy oracle converges on noise. Hand
                 the plan over for a deterministic sim replay instead. *)
              Printf.printf
                "mc runs are not reproducible; skipping shrink. Replay \
                 deterministically with:\n\
                \  fab_sim chaos --runtime sim --plan %s --seeds 1 \
                 --seed-base %d\n"
                plan.Chaos.Plan.name seed;
              Option.iter
                (fun path ->
                  let oc = open_out path in
                  output_string oc (Chaos.Plan.to_string plan);
                  close_out oc;
                  Printf.printf "wrote failing plan to %s\n" path)
                shrink_out
            end
            else begin
              Printf.printf "shrinking...\n%!";
              let shrunk =
                Chaos.Shrink.shrink
                  ~check:(fun p -> Chaos.Harness.failed (harness_run ~seed p))
                  plan
              in
              Printf.printf
                "minimal reproducer (%d of %d events; replay with --plan \
                 FILE --seeds 1 --seed-base %d):\n%s"
                (List.length shrunk.Chaos.Plan.events)
                (List.length plan.Chaos.Plan.events)
                seed
                (Chaos.Plan.to_string shrunk);
              Option.iter
                (fun path ->
                  let oc = open_out path in
                  output_string oc (Chaos.Plan.to_string shrunk);
                  close_out oc;
                  Printf.printf "wrote %s\n" path)
                shrink_out
            end;
            `Error (false, "chaos sweep failed"))
        with Invalid_argument msg ->
          (* E.g. a sim-only fault in a plan handed to --runtime mc: the
             nemesis rejects it per variant, by name. *)
          `Error (false, msg)

let chaos_cmd =
  let runtime =
    Arg.(value & opt string "sim"
         & info [ "runtime" ] ~docv:"sim|mc"
             ~doc:"Backend: $(b,sim) (deterministic, shrinkable — the \
                   oracle) or $(b,mc) (OCaml 5 domains: real \
                   parallelism, wall-clock time, races).")
  in
  let domains =
    Arg.(value & opt int 4
         & info [ "domains" ] ~doc:"Worker domains (mc runtime only).")
  in
  let time_scale =
    Arg.(value & opt float 0.001
         & info [ "time-scale" ]
             ~doc:"Wall-clock seconds per plan time unit (mc runtime \
                   only): 0.001 runs a 600-unit plan in 0.6s.")
  in
  let random_plans =
    Arg.(value & opt int 0
         & info [ "random-plans" ] ~docv:"N"
             ~doc:"Also sweep $(docv) randomized plans (mc-safe fault \
                   episodes, derived from --seed-base).")
  in
  let plans =
    Arg.(value & opt_all string []
         & info [ "plan" ] ~docv:"PLAN"
             ~doc:"Fault plan: a bundled name (crash-storm, \
                   rolling-partition, torn-writes, bit-rot, mc-mixed) or \
                   a plan-file path. Repeatable; default: all bundled \
                   plans on sim, mc-mixed on mc.")
  in
  let seeds =
    Arg.(value & opt int 10 & info [ "seeds" ] ~doc:"Seeds per plan.")
  in
  let seed_base =
    Arg.(value & opt int 1 & info [ "seed-base" ] ~doc:"First seed.")
  in
  let m = Arg.(value & opt int 2 & info [ "m"; "data-blocks" ] ~doc:"Data blocks per stripe.") in
  let n = Arg.(value & opt int 5 & info [ "n"; "total-blocks" ] ~doc:"Total blocks per stripe.") in
  let stripes =
    Arg.(value & opt int 4 & info [ "stripes" ] ~doc:"Stripes.")
  in
  let clients =
    Arg.(value & opt int 3 & info [ "clients" ] ~doc:"Concurrent clients.")
  in
  let ops =
    Arg.(value & opt int 12 & info [ "ops" ] ~doc:"Operations per client.")
  in
  let deadline =
    Arg.(value & opt float 200. & info [ "deadline" ]
           ~doc:"Per-operation deadline in delta units (fail-fast \
                 unavailability).")
  in
  let unsafe =
    Arg.(value & flag & info [ "chaos-unsafe-skip-order" ]
           ~doc:"Run the deliberately broken protocol variant that ignores \
                 the order phase (no read barrier, no recovery-sample \
                 promise, no store barrier); the sweep must catch it.")
  in
  let shrink_out =
    Arg.(value & opt (some string) None & info [ "shrink-out" ] ~docv:"FILE"
           ~doc:"Also write the shrunken reproducer plan to $(docv).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Sweep fault plans x seeds under a strict-linearizability check")
    Term.(
      ret
        (const run_chaos $ runtime $ domains $ time_scale $ plans
        $ random_plans $ seeds $ seed_base $ m $ n $ stripes $ clients
        $ ops $ deadline $ unsafe $ shrink_out))

(* ---------------- mttdl ---------------- *)

let run_mttdl capacity =
  let p = Reliability.Params.default in
  let open Reliability.Model in
  Printf.printf "MTTDL at %g TB logical capacity (%s)\n\n" capacity
    (Format.asprintf "%a" Reliability.Params.pp p);
  Printf.printf "  %-30s %10s %12s %8s\n" "scheme" "overhead" "MTTDL (yr)"
    "bricks";
  List.iter
    (fun (name, scheme, brick) ->
      Printf.printf "  %-30s %10.2f %12.3e %8d\n" name
        (storage_overhead p scheme brick)
        (mttdl_years p scheme brick ~logical_tb:capacity)
        (bricks_needed p scheme brick ~logical_tb:capacity))
    [
      ("striping / reliable R5", Striping, Reliable_r5);
      ("2-way replication / R0", Replication 2, R0);
      ("3-way replication / R0", Replication 3, R0);
      ("4-way replication / R0", Replication 4, R0);
      ("4-way replication / R5", Replication 4, R5);
      ("E.C.(5,7) / R0", Erasure (5, 7), R0);
      ("E.C.(5,8) / R0", Erasure (5, 8), R0);
      ("E.C.(5,8) / R5", Erasure (5, 8), R5);
      ("E.C.(5,10) / R0", Erasure (5, 10), R0);
    ];
  `Ok ()

let mttdl_cmd =
  let capacity =
    Arg.(value & opt float 256. & info [ "capacity" ] ~doc:"Logical TB.")
  in
  Cmd.v
    (Cmd.info "mttdl" ~doc:"Reliability model tables (figures 2 and 3)")
    Term.(ret (const run_mttdl $ capacity))

(* ---------------- quorum ---------------- *)

let run_quorum m n =
  match Quorum.Mquorum.create ~n ~m with
  | q ->
      Printf.printf "%s\n" (Format.asprintf "%a" Quorum.Mquorum.pp q);
      Printf.printf "  quorum size     : %d\n" (Quorum.Mquorum.quorum_size q);
      Printf.printf "  tolerated crashes: %d\n" (Quorum.Mquorum.f q);
      Printf.printf "  storage overhead : %.2fx\n"
        (float_of_int n /. float_of_int m);
      Printf.printf "  small-write cost : %d disk I/Os (2(n-m+1))\n"
        (2 * (n - m + 1));
      `Ok ()
  | exception Invalid_argument msg -> `Error (false, msg)

let quorum_cmd =
  let m = Arg.(value & opt int 5 & info [ "m"; "data-blocks" ] ~doc:"Data blocks.") in
  let n = Arg.(value & opt int 8 & info [ "n"; "total-blocks" ] ~doc:"Total blocks.") in
  Cmd.v
    (Cmd.info "quorum" ~doc:"m-quorum system parameters for a geometry")
    Term.(ret (const run_quorum $ m $ n))

let () =
  let info =
    Cmd.info "fab_sim" ~version:"1.0.0"
      ~doc:"Simulate FAB: decentralized erasure-coded virtual disks (DSN 2004)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            workload_cmd;
            explain_cmd;
            report_cmd;
            chaos_cmd;
            mttdl_cmd;
            quorum_cmd;
          ]))
